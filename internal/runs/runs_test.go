package runs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mbrim/internal/core"
	"mbrim/internal/diag"
	"mbrim/internal/graph"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

// testProblem mirrors what buildRequest constructs for {"k":20,
// "graphSeed":1}: the server-side and direct solves must agree on the
// problem for the bit-identity assertions.
func testProblem(k int) *graph.Graph {
	return graph.Complete(k, rng.New(1))
}

func saRequest(k int) core.Request {
	g := testProblem(k)
	return core.Request{Kind: core.SA, Model: g.ToIsing(), Graph: g, Seed: 1, Sweeps: 10}
}

func mbrimSeqRequest(k int, durationNS float64) core.Request {
	g := testProblem(k)
	return core.Request{Kind: core.MBRIMSequential, Model: g.ToIsing(), Graph: g,
		Seed: 3, DurationNS: durationNS, Chips: 4}
}

func waitDone(t *testing.T, r *Run) {
	t.Helper()
	select {
	case <-r.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("run %s did not finish", r.ID())
	}
}

func TestManagerLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{Registry: reg})
	r, err := m.Submit(context.Background(), saRequest(16))
	if err != nil {
		t.Fatal(err)
	}
	if r.ID() != "run-1" {
		t.Fatalf("ID = %q", r.ID())
	}
	waitDone(t, r)

	st := r.Status()
	if st.State != StateCompleted {
		t.Fatalf("state = %s, want completed", st.State)
	}
	if st.Engine != "sa" || st.Spins != 16 || st.Seed != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Outcome == nil || st.Outcome.Spins != 16 {
		t.Fatalf("outcome = %+v", st.Outcome)
	}
	if st.Progress.Phase != "done" || st.Progress.Engine != "sa" {
		t.Fatalf("progress = %+v", st.Progress)
	}
	if !st.Progress.HasEnergy || st.Progress.BestEnergy != st.Outcome.Energy {
		t.Fatalf("progress energy %v vs outcome %v", st.Progress.BestEnergy, st.Outcome.Energy)
	}
	if st.EndedWallNS == 0 || st.HasCheckpoint {
		t.Fatalf("terminal status = %+v", st)
	}
	out, err := r.Outcome()
	if err != nil || out == nil || len(out.Spins) != 16 {
		t.Fatalf("Outcome() = %v, %v", out, err)
	}
	// The ring retained the bracket events for replay. The root solve
	// span closes after RunEnd (spans are matched by ID, not position),
	// so the tail may hold span_end events past the bracket.
	recent := r.Recent()
	if len(recent) == 0 || recent[0].Kind != obs.RunStart {
		t.Fatalf("ring = %v events", len(recent))
	}
	lastFlat := obs.Event{}
	for _, e := range recent {
		if e.Kind != obs.SpanStart && e.Kind != obs.SpanEnd {
			lastFlat = e
		}
	}
	if lastFlat.Kind != obs.RunEnd {
		t.Fatalf("last flat event = %+v, want run_end", lastFlat)
	}

	if got, ok := m.Get("run-1"); !ok || got != r {
		t.Fatal("Get(run-1) failed")
	}
	if _, ok := m.Get("run-99"); ok {
		t.Fatal("Get(run-99) succeeded")
	}
	if err := m.Cancel("run-99"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(run-99) = %v", err)
	}
	if l := m.List(); len(l) != 1 || l[0].ID != "run-1" {
		t.Fatalf("List = %+v", l)
	}
	if m.Active() != 0 {
		t.Fatalf("Active = %d", m.Active())
	}

	sn := reg.Snapshot()
	if sn.Counters["runs.submitted"] != 1 {
		t.Fatalf("runs.submitted = %d", sn.Counters["runs.submitted"])
	}
	if sn.Gauges["runs.active"] != 0 {
		t.Fatalf("runs.active = %v", sn.Gauges["runs.active"])
	}
	if sn.Counters[`runs.finished{engine="sa",state="completed"}`] != 1 {
		t.Fatalf("finished counter missing: %v", sn.Counters)
	}
	if sn.Counters[`core.solves{engine="sa"}`] != 1 {
		t.Fatalf("labeled core.solves missing: %v", sn.Counters)
	}
}

func TestManagerMaxActiveAndDrain(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{Registry: reg, MaxActive: 1})
	long, err := m.Submit(context.Background(), mbrimSeqRequest(20, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), saRequest(8)); !errors.Is(err, ErrBusy) {
		t.Fatalf("second submit = %v, want ErrBusy", err)
	}

	ids := m.CancelAll()
	if len(ids) != 1 || ids[0] != long.ID() {
		t.Fatalf("CancelAll = %v", ids)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if !m.Wait(ctx) {
		t.Fatal("drain did not complete")
	}
	st := long.Status()
	if st.State != StateInterrupted {
		t.Fatalf("state = %s, want interrupted", st.State)
	}
	if !st.HasCheckpoint || len(long.Checkpoint()) == 0 {
		t.Fatal("interrupted multichip run lost its checkpoint")
	}
	// A terminal run is not re-cancelled by a second drain.
	if ids := m.CancelAll(); len(ids) != 0 {
		t.Fatalf("second CancelAll = %v", ids)
	}
}

func TestSubmitRejectsNilModel(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.Submit(context.Background(), core.Request{Kind: core.SA}); err == nil {
		t.Fatal("nil model accepted")
	}
}

// newTestServer mounts the full operations surface the way cmd/mbrimd
// does, with a flippable readiness probe.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager, *atomic.Bool) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	m := NewManager(cfg)
	var draining atomic.Bool
	mux := http.NewServeMux()
	Mount(mux, m, cfg.Registry, func() bool { return !draining.Load() })
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, m, &draining
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPLifecycle(t *testing.T) {
	srv, m, draining := newTestServer(t, Config{})

	if resp, body := getBody(t, srv.URL+"/healthz"); resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
	if resp, _ := getBody(t, srv.URL+"/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}
	draining.Store(true)
	if resp, body := getBody(t, srv.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "draining") {
		t.Fatalf("draining readyz = %d %q", resp.StatusCode, body)
	}
	draining.Store(false)

	resp, body := postJSON(t, srv.URL+"/runs", `{"engine":"sa","k":16,"sweeps":10}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Engine != "sa" || st.Spins != 16 {
		t.Fatalf("submit status = %+v", st)
	}

	run, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("submitted run not registered")
	}
	waitDone(t, run)

	resp, body = getBody(t, srv.URL+"/runs/"+st.ID)
	if resp.StatusCode != 200 {
		t.Fatalf("get = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateCompleted || st.Outcome == nil {
		t.Fatalf("terminal status = %+v", st)
	}

	var list struct {
		Runs []Status `json:"runs"`
	}
	resp, body = getBody(t, srv.URL+"/runs")
	if resp.StatusCode != 200 {
		t.Fatalf("list = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 1 || list.Runs[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	if resp, _ := getBody(t, srv.URL+"/runs/run-404"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing run = %d", resp.StatusCode)
	}
	// A completed software run holds no checkpoint.
	if resp, _ := getBody(t, srv.URL+"/runs/"+st.ID+"/checkpoint"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("checkpoint of completed sa run = %d", resp.StatusCode)
	}

	// The Prometheus exposition carries the manager's and the solve's
	// labeled series, histogram buckets included.
	resp, body = getBody(t, srv.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", got)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE runs_wall_ns histogram",
		`runs_wall_ns_bucket{engine="sa",le="`,
		`runs_finished{engine="sa",state="completed"} 1`,
		`core_solves{engine="sa"} 1`,
		"runs_submitted 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	resp, body = getBody(t, srv.URL+"/metrics.json")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics.json = %d", resp.StatusCode)
	}
	var sn obs.Snapshot
	if err := json.Unmarshal(body, &sn); err != nil {
		t.Fatalf("metrics.json not a snapshot: %v", err)
	}
	if sn.Counters["runs.submitted"] != 1 {
		t.Fatalf("metrics.json counters = %v", sn.Counters)
	}
}

func TestHTTPValidation(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{MaxSpins: 64})
	cases := []struct {
		name, body string
	}{
		{"bad engine", `{"engine":"warp","k":8}`},
		{"no problem", `{"engine":"sa"}`},
		{"both problems", `{"engine":"sa","k":8,"n":2,"edges":[[1,2,1]]}`},
		{"too many spins", `{"engine":"sa","k":65}`},
		{"edges without n", `{"engine":"sa","edges":[[1,2,1]]}`},
		{"edge out of range", `{"engine":"sa","n":4,"edges":[[1,5,1]]}`},
		{"self edge", `{"engine":"sa","n":4,"edges":[[2,2,1]]}`},
		{"unknown field", `{"engine":"sa","k":8,"warp":9}`},
		{"syntax error", `{"engine":`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, srv.URL+"/runs", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", c.name, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope %s", c.name, body)
		}
	}
}

func TestHTTPExplicitEdgeList(t *testing.T) {
	srv, m, _ := newTestServer(t, Config{})
	// A 4-cycle with unit weights, Gset-style 1-based endpoints.
	resp, body := postJSON(t, srv.URL+"/runs",
		`{"engine":"sa","n":4,"edges":[[1,2,1],[2,3,1],[3,4,1],[4,1,1]],"sweeps":10}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	run, _ := m.Get(st.ID)
	waitDone(t, run)
	out, err := run.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	// The 4-cycle's max cut is 4 (alternating bipartition).
	if out.Cut != 4 {
		t.Fatalf("cut = %v, want 4", out.Cut)
	}
}

// sseEvent is one parsed Server-Sent Events message. id is 0 when the
// message carried no id: line.
type sseEvent struct {
	kind string
	data []byte
	id   int64
}

// readSSE consumes messages from an event stream until pred returns
// true (the returned slice ends with that message) or the stream ends.
func readSSE(t *testing.T, sc *bufio.Scanner, pred func(sseEvent) bool) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = id
		case line == "":
			if cur.kind == "" && cur.data == nil {
				continue
			}
			out = append(out, cur)
			if pred(cur) {
				return out
			}
			cur = sseEvent{}
		}
	}
	return out
}

func TestSSEReplayOfFinishedRun(t *testing.T) {
	srv, m, _ := newTestServer(t, Config{})
	_, body := postJSON(t, srv.URL+"/runs", `{"engine":"sa","k":12,"sweeps":10}`)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	run, _ := m.Get(st.ID)
	waitDone(t, run)

	resp, err := http.Get(srv.URL + "/runs/" + st.ID + "/events?replay=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("Content-Type = %q", got)
	}
	msgs := readSSE(t, bufio.NewScanner(resp.Body), func(e sseEvent) bool { return e.kind == "done" })
	if len(msgs) < 2 {
		t.Fatalf("replay yielded %d messages", len(msgs))
	}
	var first obs.Event
	if err := json.Unmarshal(msgs[0].data, &first); err != nil {
		t.Fatal(err)
	}
	if msgs[0].kind != "trace" || first.Kind != obs.RunStart {
		t.Fatalf("first message = %s %+v", msgs[0].kind, first)
	}
	var final Status
	if err := json.Unmarshal(msgs[len(msgs)-1].data, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateCompleted {
		t.Fatalf("done status = %+v", final)
	}
}

// TestSSELastEventIDReconnect pins the SSE resume contract: a client
// that disconnects mid-stream and reconnects with Last-Event-ID
// receives exactly the events after that ordinal — including the span
// events emitted before the reconnect — with sequential exact ids.
func TestSSELastEventIDReconnect(t *testing.T) {
	srv, m, _ := newTestServer(t, Config{})
	_, body := postJSON(t, srv.URL+"/runs",
		`{"engine":"mbrim","k":16,"chips":2,"durationNS":200,"epochNS":10}`)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	run, _ := m.Get(st.ID)
	waitDone(t, run)

	// First connection: full replay. Every trace message must carry a
	// sequential id.
	resp, err := http.Get(srv.URL + "/runs/" + st.ID + "/events?replay=100000")
	if err != nil {
		t.Fatal(err)
	}
	all := readSSE(t, bufio.NewScanner(resp.Body), func(e sseEvent) bool { return e.kind == "done" })
	resp.Body.Close()
	traces := all[:len(all)-1]
	if len(traces) < 10 {
		t.Fatalf("only %d trace messages", len(traces))
	}
	for i, msg := range traces {
		if msg.id != traces[0].id+int64(i) {
			t.Fatalf("ids not sequential: msg %d has id %d, first %d", i, msg.id, traces[0].id)
		}
	}

	// "Disconnect" midway and reconnect presenting the last id we saw.
	cut := len(traces) / 2
	lastSeen := traces[cut].id
	req, err := http.NewRequest("GET", srv.URL+"/runs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatInt(lastSeen, 10))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	resumed := readSSE(t, bufio.NewScanner(resp2.Body), func(e sseEvent) bool { return e.kind == "done" })
	resumed = resumed[:len(resumed)-1]
	want := traces[cut+1:]
	if len(resumed) != len(want) {
		t.Fatalf("resume replayed %d events, want %d", len(resumed), len(want))
	}
	spanReplayed := false
	for i, msg := range resumed {
		if msg.id != want[i].id {
			t.Fatalf("resumed id[%d] = %d, want %d", i, msg.id, want[i].id)
		}
		var got, exp obs.Event
		if err := json.Unmarshal(msg.data, &got); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want[i].data, &exp); err != nil {
			t.Fatal(err)
		}
		if got != exp {
			t.Fatalf("resumed event %d = %+v, want %+v", i, got, exp)
		}
		if got.Kind == obs.SpanStart || got.Kind == obs.SpanEnd {
			spanReplayed = true
		}
	}
	if !spanReplayed {
		t.Fatalf("reconnect replay carried no span events (cut at id %d of %d)", lastSeen, len(traces))
	}
	// A reconnect fully caught up replays nothing and ends with done.
	req3, _ := http.NewRequest("GET", srv.URL+"/runs/"+st.ID+"/events", nil)
	req3.Header.Set("Last-Event-ID", strconv.FormatInt(traces[len(traces)-1].id, 10))
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	tail := readSSE(t, bufio.NewScanner(resp3.Body), func(e sseEvent) bool { return e.kind == "done" })
	if len(tail) != 1 || tail[0].kind != "done" {
		t.Fatalf("caught-up reconnect = %+v", tail)
	}
}

// TestDiagAndTraceEndpoints is the introspection acceptance surface: a
// seeded 3-chip run must expose chip-pair disagreement, a plateau
// verdict and a CI-bounded TTS estimate on /diag, and a
// Perfetto-loadable Chrome trace with the nested span hierarchy on
// /trace.
func TestDiagAndTraceEndpoints(t *testing.T) {
	srv, m, _ := newTestServer(t, Config{})
	_, body := postJSON(t, srv.URL+"/runs",
		`{"engine":"mbrim","k":20,"chips":3,"durationNS":400,"epochNS":10,"seed":7}`)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	run, _ := m.Get(st.ID)
	waitDone(t, run)

	resp, dbody := getBody(t, srv.URL+"/runs/"+st.ID+"/diag")
	if resp.StatusCode != 200 {
		t.Fatalf("diag = %d %s", resp.StatusCode, dbody)
	}
	var snap diag.Snapshot
	if err := json.Unmarshal(dbody, &snap); err != nil {
		t.Fatalf("diag JSON: %v\n%s", err, dbody)
	}
	if len(snap.Pairs) != 6 {
		t.Fatalf("pairs = %d, want 6 (3 chips directed): %s", len(snap.Pairs), dbody)
	}
	if snap.TTS == nil {
		t.Fatalf("no TTS estimate: %s", dbody)
	}
	if snap.TTS.PLow > snap.TTS.SuccessP || snap.TTS.PHigh < snap.TTS.SuccessP {
		t.Fatalf("TTS CI does not bracket p: %+v", snap.TTS)
	}
	if snap.Traffic.TotalBytes <= 0 {
		t.Fatalf("no traffic attribution: %s", dbody)
	}

	resp, tbody := getBody(t, srv.URL+"/runs/"+st.ID+"/trace")
	if resp.StatusCode != 200 {
		t.Fatalf("trace = %d", resp.StatusCode)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbody, &trace); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	names := map[string]bool{}
	chipTrack := false
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
			if ev.Name == "chip_step" && ev.TID == 3 {
				chipTrack = true
			}
		}
	}
	for _, want := range []string{"solve", "epoch", "chip_step", "sync"} {
		if !names[want] {
			t.Fatalf("trace missing %q slices; have %v", want, names)
		}
	}
	if !chipTrack {
		t.Fatalf("chip 2's chip_step slices not on tid 3")
	}
	// Prometheus carries the diagnostics series for the run.
	_, prom := getBody(t, srv.URL+"/metrics")
	for _, want := range []string{"diag_pair_disagreement", "diag_plateau", "diag_sync_cost_bytes"} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("metrics exposition missing %s", want)
		}
	}
}

// TestCancelCheckpointResumeOverHTTP is the acceptance pin: an SSE
// client watches a live multichip solve, cancels it mid-run, downloads
// the checkpoint, and a resumed solve reproduces the uninterrupted
// run's spins bit for bit.
func TestCancelCheckpointResumeOverHTTP(t *testing.T) {
	const k, durationNS = 20, 10000.0

	// The ground truth: the same problem solved without interruption.
	baseline, err := core.Solve(mbrimSeqRequest(k, durationNS))
	if err != nil {
		t.Fatal(err)
	}

	srv, _, _ := newTestServer(t, Config{})
	resp, body := postJSON(t, srv.URL+"/runs",
		fmt.Sprintf(`{"engine":"mbrim-seq","k":%d,"seed":3,"durationNS":%g,"chips":4}`, k, durationNS))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	id := st.ID

	// Tail the live event stream; the first trace event proves the
	// solve is in flight.
	stream, err := http.Get(srv.URL + "/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	live := readSSE(t, sc, func(e sseEvent) bool { return e.kind == "trace" })
	if len(live) == 0 {
		t.Fatal("no live trace event before run end")
	}

	// The checkpoint is not downloadable while the run is in flight.
	if resp, _ := getBody(t, srv.URL+"/runs/"+id+"/checkpoint"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("in-flight checkpoint = %d, want 409", resp.StatusCode)
	}

	resp, body = postJSON(t, srv.URL+"/runs/"+id+"/cancel", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d %s", resp.StatusCode, body)
	}

	// The stream must end with the terminal status.
	msgs := readSSE(t, sc, func(e sseEvent) bool { return e.kind == "done" })
	if len(msgs) == 0 || msgs[len(msgs)-1].kind != "done" {
		t.Fatalf("stream ended without done event (%d messages)", len(msgs))
	}
	var final Status
	if err := json.Unmarshal(msgs[len(msgs)-1].data, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateInterrupted {
		t.Fatalf("state = %s, want interrupted (cancel raced run end?)", final.State)
	}
	if !final.HasCheckpoint || final.Outcome == nil || final.Error == "" {
		t.Fatalf("interrupted status = %+v", final)
	}

	resp, ck := getBody(t, srv.URL+"/runs/"+id+"/checkpoint")
	if resp.StatusCode != 200 {
		t.Fatalf("checkpoint = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Fatalf("checkpoint Content-Type = %q", got)
	}
	if !strings.Contains(resp.Header.Get("Content-Disposition"), id+".ckpt") {
		t.Fatalf("Content-Disposition = %q", resp.Header.Get("Content-Disposition"))
	}
	if len(ck) == 0 {
		t.Fatal("empty checkpoint download")
	}

	// Resume from the downloaded envelope: the continuation must be
	// bit-identical to the run that was never interrupted.
	req := mbrimSeqRequest(k, durationNS)
	req.Resume = ck
	resumed, err := core.Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Energy != baseline.Energy {
		t.Fatalf("resumed energy %v != baseline %v", resumed.Energy, baseline.Energy)
	}
	if !bytes.Equal(int8Bytes(resumed.Spins), int8Bytes(baseline.Spins)) {
		t.Fatal("resumed spins differ from the uninterrupted run")
	}
}

func int8Bytes(s []int8) []byte {
	out := make([]byte, len(s))
	for i, v := range s {
		out[i] = byte(v)
	}
	return out
}
