package runs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"

	"mbrim/internal/core"
	"mbrim/internal/diag"
	"mbrim/internal/journal"
	"mbrim/internal/obs"
	"mbrim/internal/portfolio"
)

// This file is the admission layer: the bounded queue behind
// MaxActive, priority-then-FIFO dispatch, per-run deadline and
// memory-budget checks, and the overload-shedding error taxonomy the
// HTTP surface maps onto 429/413/503. The policy in one line: admit
// cheaply or reject cheaply — a shed submission costs one lock
// acquisition and no allocation of run machinery.

// ErrNotAccepting reports the submission gate is closed — the daemon
// is replaying its journal after a restart, or draining for shutdown.
var ErrNotAccepting = errors.New("runs: not accepting submissions (replaying or draining)")

// QueueFullError sheds a submission: MaxActive runs are executing and
// the admission queue holds MaxQueued more. RetryAfter estimates, in
// seconds, when a slot should free (the HTTP layer sends it verbatim
// as Retry-After on the 429).
type QueueFullError struct {
	Active     int
	Queued     int
	RetryAfter int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("runs: overloaded: %d active, %d queued; retry in ~%ds",
		e.Active, e.Queued, e.RetryAfter)
}

// TooLargeError rejects a submission whose estimated resident
// footprint exceeds the manager's memory budget (HTTP 413).
type TooLargeError struct {
	Estimated int64
	Budget    int64
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("runs: estimated footprint %d bytes exceeds the %d-byte budget",
		e.Estimated, e.Budget)
}

// SubmitOptions carries admission metadata for SubmitWith.
type SubmitOptions struct {
	// Priority orders the admission queue: higher dispatches first,
	// equal priorities dispatch FIFO. Executing runs are never
	// preempted.
	Priority int
	// Deadline, when set, bounds the run's whole life: an expired
	// deadline is refused at submit, sheds a queued run at dispatch,
	// and cancels an executing run (like POST /runs/{id}/cancel).
	Deadline time.Time
	// Spec is the serialized submit body recorded in the journal; a
	// crashed run is rebuilt from it on replay. Runs submitted without
	// one are not replayable and resurface as failed tombstones.
	Spec []byte

	restarts int // replay-internal: restart records already on the journal
}

// EstimateRunBytes approximates a run's resident footprint for the
// admission memory budget: the dense coupling matrix dominates (8·n²),
// plus per-spin chip state and the run's retained-event ring. A
// portfolio run multiplies the per-spin state by its race width — each
// entrant is a full concurrent solver over the shared model. It is an
// admission fence, not an accountant — it exists to refuse the
// submission that would OOM the daemon, not to meter kilobytes.
func EstimateRunBytes(req *core.Request, ringSize int) int64 {
	return estimateRunBytesN(int64(req.Model.N()), req.Chips, requestWorkers(req), ringSize)
}

// requestWorkers reports how many solver instances a request runs
// concurrently: the portfolio's race width (the dispatcher's default
// field when the spec names no entrants), 1 for every other engine.
func requestWorkers(req *core.Request) int {
	if req.Kind != core.Portfolio {
		return 1
	}
	w := len(req.Portfolio.Entrants)
	if w == 0 {
		w = portfolio.DefaultDispatchEntrants
	}
	if w > portfolio.MaxEntrants {
		w = portfolio.MaxEntrants
	}
	return w
}

func estimateRunBytesN(n int64, chips, workers, ringSize int) int64 {
	c := int64(chips)
	if c < 1 {
		c = 1
	}
	if workers > 1 {
		c *= int64(workers)
	}
	if ringSize <= 0 {
		ringSize = 4096
	}
	const eventBytes = 192 // sizeof(obs.Event), rounded to its alloc class
	return 8*n*n + 16*n*c + int64(ringSize)*eventBytes
}

// checkBudget applies the MaxRunBytes fence for an n-spin submission.
// buildRequest calls it BEFORE constructing the graph: the dense model
// of an oversized problem costs the same 8·n² the fence exists to
// refuse, so building it first would hang the submit handler for
// exactly the request the budget is meant to bounce.
func (m *Manager) checkBudget(n, chips, workers int) error {
	if m.cfg.MaxRunBytes <= 0 {
		return nil
	}
	if est := estimateRunBytesN(int64(n), chips, workers, m.cfg.RingSize); est > m.cfg.MaxRunBytes {
		m.reg.Counter("runs.rejected_too_large_total").Inc()
		return &TooLargeError{Estimated: est, Budget: m.cfg.MaxRunBytes}
	}
	return nil
}

// SubmitWith registers req under the admission policy in opts. With a
// free MaxActive slot the run starts immediately; with MaxQueued
// headroom it parks in state "queued"; otherwise the submission is
// shed (*QueueFullError, or ErrBusy when no queue is configured).
func (m *Manager) SubmitWith(ctx context.Context, req core.Request, opts SubmitOptions) (*Run, error) {
	if req.Model == nil {
		return nil, fmt.Errorf("runs: request has no model")
	}
	if !m.accepting.Load() {
		return nil, ErrNotAccepting
	}
	if err := m.checkBudget(req.Model.N(), req.Chips, requestWorkers(&req)); err != nil {
		return nil, err
	}
	if !opts.Deadline.IsZero() && !time.Now().Before(opts.Deadline) {
		m.reg.Counter("runs.shed_total").Inc()
		return nil, fmt.Errorf("runs: deadline already passed")
	}
	return m.admit(ctx, "", req, opts, false)
}

// admit performs registration under the capacity policy. id is ""
// except on journal replay, which re-registers crashed runs under
// their original IDs (and skips re-journaling the submit — the
// original record is still on the log).
func (m *Manager) admit(ctx context.Context, id string, req core.Request, opts SubmitOptions, fromReplay bool) (*Run, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m.mu.Lock()
	queued := false
	if m.cfg.MaxActive > 0 && m.active >= m.cfg.MaxActive {
		if m.cfg.MaxQueued <= 0 {
			m.mu.Unlock()
			return nil, ErrBusy
		}
		if len(m.queue) >= m.cfg.MaxQueued {
			qerr := &QueueFullError{
				Active:     m.active,
				Queued:     len(m.queue),
				RetryAfter: m.retryAfterLocked(),
			}
			m.mu.Unlock()
			m.reg.Counter("runs.queue_rejected_total").Inc()
			return nil, qerr
		}
		queued = true
	}
	if id == "" {
		m.seq++
		id = "run-" + strconv.Itoa(m.seq)
	}
	var rctx context.Context
	var cancel context.CancelFunc
	if opts.Deadline.IsZero() {
		rctx, cancel = context.WithCancel(ctx)
	} else {
		rctx, cancel = context.WithDeadline(ctx, opts.Deadline)
	}
	r := &Run{
		id:       id,
		mgr:      m,
		req:      req,
		ring:     obs.NewRing(m.cfg.RingSize),
		bcast:    obs.NewBroadcast(m.cfg.BroadcastBuffer),
		done:     make(chan struct{}),
		cancel:   cancel,
		rctx:     rctx,
		priority: opts.Priority,
		deadline: opts.Deadline,
		spec:     opts.Spec,
		restarts: opts.restarts,
		state:    StatePending,
		created:  time.Now(),
	}
	// Every managed run carries the introspection plane: hierarchical
	// span events in the retained/broadcast stream (GET /runs/{id}/trace
	// exports them as a Chrome trace) and a diagnostics reducer behind
	// GET /runs/{id}/diag. Both are opt-in at the engine layer and
	// trajectory-neutral — a managed solve stays bit-identical to an
	// unmanaged one with the same seed.
	r.diag = diag.New(diag.Config{Registry: m.reg, RunID: id})
	req.Tracer = obs.Fanout(progressSink{r}, r.ring, r.bcast, r.diag, req.Tracer)
	req.SpanTrace = true
	req.Diag = true
	if req.Metrics == nil {
		req.Metrics = m.reg
	}
	r.execReq = req
	m.runs[id] = r
	m.order = append(m.order, id)
	if queued {
		r.state = StateQueued
		r.queuedAt = time.Now()
		r.progress.Phase = "queued"
		m.queue = append(m.queue, r)
		m.gaugeQueueDepthLocked()
	} else {
		r.progress.Phase = "submitted"
		m.active++
	}
	m.mu.Unlock()

	m.reg.Counter("runs.submitted").Inc()
	if !fromReplay {
		var deadlineNS int64
		if !opts.Deadline.IsZero() {
			deadlineNS = opts.Deadline.UnixNano()
		}
		// Durability ordering: the submit record lands (fsynced) before
		// Submit returns, so any run a client saw accepted survives
		// kill -9 into the replay pass.
		m.journalAppend(journal.Record{
			Type: journal.TypeSubmit, ID: id,
			Spec: opts.Spec, Priority: opts.Priority, DeadlineWallNS: deadlineNS,
		})
	}
	if !queued {
		m.reg.Gauge("runs.active").Add(1)
		go m.execute(rctx, r, r.execReq)
	}
	return r, nil
}

// dispatch drains the queue into free MaxActive slots: highest
// priority first, FIFO within a priority. Runs whose context died
// while queued (cancel or deadline) are shed without consuming a slot.
func (m *Manager) dispatch() {
	for {
		m.mu.Lock()
		if len(m.queue) == 0 || (m.cfg.MaxActive > 0 && m.active >= m.cfg.MaxActive) {
			m.gaugeQueueDepthLocked()
			m.mu.Unlock()
			return
		}
		r := m.popLocked()
		if err := r.rctx.Err(); err != nil {
			m.gaugeQueueDepthLocked()
			m.mu.Unlock()
			if errors.Is(err, context.DeadlineExceeded) {
				m.reg.Counter("runs.shed_total").Inc()
				m.finishQueued(r, StateFailed,
					fmt.Errorf("runs: deadline expired after %s queued", time.Since(r.queuedAt).Round(time.Millisecond)))
			} else {
				m.finishQueued(r, StateInterrupted, errors.New("runs: cancelled while queued"))
			}
			continue
		}
		m.active++
		m.gaugeQueueDepthLocked()
		m.mu.Unlock()
		m.reg.Gauge("runs.active").Add(1)
		go m.execute(r.rctx, r, r.execReq)
	}
}

// popLocked removes and returns the dispatch candidate: the first run
// holding the maximum priority (slice order preserves FIFO within a
// priority). Caller holds m.mu and has checked the queue is non-empty.
func (m *Manager) popLocked() *Run {
	best := 0
	for i := 1; i < len(m.queue); i++ {
		if m.queue[i].priority > m.queue[best].priority {
			best = i
		}
	}
	r := m.queue[best]
	m.queue = append(m.queue[:best], m.queue[best+1:]...)
	return r
}

// shedIfQueued removes r from the queue if it is still there and
// finishes it as interrupted — the Cancel path for queued runs, which
// must terminate promptly instead of waiting for a dispatch slot.
func (m *Manager) shedIfQueued(r *Run) {
	m.mu.Lock()
	found := false
	for i, q := range m.queue {
		if q == r {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			found = true
			break
		}
	}
	m.gaugeQueueDepthLocked()
	m.mu.Unlock()
	if found {
		m.finishQueued(r, StateInterrupted, errors.New("runs: cancelled while queued"))
	}
}

// finishQueued publishes a terminal state for a run that never got a
// slot. Idempotent — dispatch, Cancel and CancelAll can race here.
func (m *Manager) finishQueued(r *Run, state State, err error) {
	r.mu.Lock()
	if r.state.Terminal() {
		r.mu.Unlock()
		return
	}
	r.state = state
	r.err = err
	r.ended = time.Now()
	r.mu.Unlock()
	m.journalTerminal(r, state)
	m.reg.CounterWith("runs.finished", obs.Labels{
		"engine": string(r.req.Kind), "state": string(state)}).Inc()
	r.cancel()
	r.bcast.Close()
	close(r.done)
}

// gaugeQueueDepthLocked refreshes the queue-depth gauge; caller holds
// m.mu.
func (m *Manager) gaugeQueueDepthLocked() {
	m.reg.Gauge("runs.queue_depth").Set(float64(len(m.queue)))
}

// retryAfterLocked estimates when a shed client should come back: the
// queue ahead of it must drain at MaxActive runs per smoothed mean run
// wall time. Clamped to [1, 60] seconds — Retry-After is a hint, not a
// reservation. Caller holds m.mu.
func (m *Manager) retryAfterLocked() int {
	mean := m.wallEWMA
	if mean <= 0 {
		mean = 1
	}
	slots := m.cfg.MaxActive
	if slots < 1 {
		slots = 1
	}
	sec := int(math.Ceil(mean * float64(len(m.queue)+1) / float64(slots)))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// observeWallLocked folds one finished run's wall time into the EWMA
// behind Retry-After. Caller holds m.mu.
func (m *Manager) observeWallLocked(wall time.Duration) {
	s := wall.Seconds()
	if m.wallEWMA == 0 {
		m.wallEWMA = s
		return
	}
	m.wallEWMA = 0.8*m.wallEWMA + 0.2*s
}

// queueWaitSpan is the synthetic span ID for admission-queue wait.
// Engine span IDs are small sequential integers; 1<<62 cannot collide.
const queueWaitSpan = uint64(1) << 62

// emitQueueWait injects a queue_wait span into the run's event stream
// so the wait shows up in the trace export and the diag snapshot.
func emitQueueWait(tracer obs.Tracer, wait time.Duration) {
	if tracer == nil {
		return
	}
	now := time.Now().UnixNano()
	tracer.Emit(obs.Event{Kind: obs.SpanStart, Span: queueWaitSpan,
		Label: "queue_wait", WallNS: now - wait.Nanoseconds()})
	tracer.Emit(obs.Event{Kind: obs.SpanEnd, Span: queueWaitSpan,
		Label: "queue_wait", WallNS: now, WallDurNS: wait.Nanoseconds()})
}
