package runs

import (
	"context"
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"mbrim/internal/obs"
)

// occupySlot submits a run long enough to hold its MaxActive slot for
// the duration of the test (cancelled in cleanup as a safety net).
func occupySlot(t *testing.T, m *Manager) *Run {
	t.Helper()
	long, err := m.Submit(context.Background(), mbrimSeqRequest(20, 50000))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		long.Cancel()
		waitDone(t, long)
	})
	return long
}

func TestQueueAdmitsAndDispatches(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{Registry: reg, MaxActive: 1, MaxQueued: 2})
	long := occupySlot(t, m)

	q, err := m.SubmitWith(context.Background(), saRequest(8), SubmitOptions{})
	if err != nil {
		t.Fatalf("queued submit = %v", err)
	}
	if st := q.Status(); st.State != StateQueued {
		t.Fatalf("state = %s, want queued", st.State)
	}
	if d := reg.Snapshot().Gauges["runs.queue_depth"]; d != 1 {
		t.Fatalf("queue_depth = %v, want 1", d)
	}

	long.Cancel()
	waitDone(t, long)
	waitDone(t, q)
	st := q.Status()
	if st.State != StateCompleted {
		t.Fatalf("dispatched run state = %s, want completed", st.State)
	}
	if st.QueueWaitNS <= 0 || st.StartedWallNS == 0 {
		t.Fatalf("queue wait not attributed: %+v", st)
	}
	// The wait surfaces in the diag snapshot too (via the synthetic
	// queue_wait span in the run's own event stream).
	if dn := q.Diag().QueueWaitNS; dn <= 0 {
		t.Fatalf("diag queueWaitNS = %d, want > 0", dn)
	}
	if d := reg.Snapshot().Gauges["runs.queue_depth"]; d != 0 {
		t.Fatalf("queue_depth after drain = %v, want 0", d)
	}
}

func TestQueueFullShedsWith429(t *testing.T) {
	reg := obs.NewRegistry()
	srv, m, _ := newTestServer(t, Config{Registry: reg, MaxActive: 1, MaxQueued: 1})
	t.Cleanup(func() {
		m.CancelAll()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		m.Wait(ctx)
	})

	body := `{"engine":"mbrim-seq","k":20,"durationNS":50000,"seed":3,"chips":4}`
	if resp, data := postJSON(t, srv.URL+"/runs", body); resp.StatusCode != 202 {
		t.Fatalf("first submit = %d %s", resp.StatusCode, data)
	}
	resp, data := postJSON(t, srv.URL+"/runs", body)
	if resp.StatusCode != 202 {
		t.Fatalf("second submit = %d %s", resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil || st.State != StateQueued {
		t.Fatalf("second submit state = %+v (%v), want queued", st, err)
	}

	// Queue full: the third submission is shed with the documented
	// contract — 429, a positive Retry-After, and the rejection counter.
	resp, data = postJSON(t, srv.URL+"/runs", body)
	if resp.StatusCode != 429 {
		t.Fatalf("third submit = %d %s, want 429", resp.StatusCode, data)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(data), "overloaded") {
		t.Fatalf("429 body = %s", data)
	}
	if n := reg.Snapshot().Counters["runs.queue_rejected_total"]; n != 1 {
		t.Fatalf("runs.queue_rejected_total = %d, want 1", n)
	}
	// The shed submission allocated no run.
	if l := m.List(); len(l) != 2 {
		t.Fatalf("List after shed = %d runs, want 2", len(l))
	}
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	m := NewManager(Config{Registry: obs.NewRegistry(), MaxActive: 1, MaxQueued: 4})
	long := occupySlot(t, m)

	submit := func(prio int) *Run {
		r, err := m.SubmitWith(context.Background(), saRequest(8), SubmitOptions{Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b, c, d := submit(0), submit(5), submit(5), submit(1)
	long.Cancel()
	for _, r := range []*Run{a, b, c, d} {
		waitDone(t, r)
	}
	// Dispatch order with MaxActive=1 is strictly serialized, so start
	// stamps encode it: highest priority first, FIFO within a priority.
	started := func(r *Run) int64 { return r.Status().StartedWallNS }
	if !(started(b) < started(c) && started(c) < started(d) && started(d) < started(a)) {
		t.Fatalf("dispatch order wrong: a=%d b=%d c=%d d=%d (want b < c < d < a)",
			started(a), started(b), started(c), started(d))
	}
}

func TestQueuedRunDeadline(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{Registry: reg, MaxActive: 1, MaxQueued: 2})

	// An already-expired deadline never reaches the queue.
	if _, err := m.SubmitWith(context.Background(), saRequest(8),
		SubmitOptions{Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Fatal("expired deadline accepted")
	}

	long := occupySlot(t, m)
	q, err := m.SubmitWith(context.Background(), saRequest(8),
		SubmitOptions{Deadline: time.Now().Add(80 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let the deadline lapse while queued
	long.Cancel()
	waitDone(t, q)
	st := q.Status()
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if _, err := q.Outcome(); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error = %v, want a deadline shed", err)
	}
	if n := reg.Snapshot().Counters["runs.shed_total"]; n < 2 {
		t.Fatalf("runs.shed_total = %d, want >= 2 (submit refusal + dispatch shed)", n)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{Registry: reg, MaxActive: 1, MaxQueued: 2})
	occupySlot(t, m)

	q, err := m.SubmitWith(context.Background(), saRequest(8), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel()
	// A cancelled queued run terminates promptly — it does not wait for
	// a dispatch slot.
	select {
	case <-q.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued run did not terminate")
	}
	if st := q.Status(); st.State != StateInterrupted {
		t.Fatalf("state = %s, want interrupted", st.State)
	}
	if _, err := q.Outcome(); err == nil || !strings.Contains(err.Error(), "queued") {
		t.Fatalf("error = %v, want cancelled-while-queued", err)
	}
}

func TestMemoryBudgetRejects(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{Registry: reg, MaxRunBytes: 1000})
	_, err := m.SubmitWith(context.Background(), saRequest(16), SubmitOptions{})
	var terr *TooLargeError
	if !errors.As(err, &terr) {
		t.Fatalf("err = %v, want *TooLargeError", err)
	}
	if terr.Estimated <= terr.Budget {
		t.Fatalf("estimate %d not above budget %d", terr.Estimated, terr.Budget)
	}
	if n := reg.Snapshot().Counters["runs.rejected_too_large_total"]; n != 1 {
		t.Fatalf("runs.rejected_too_large_total = %d, want 1", n)
	}

	srv, _, _ := newTestServer(t, Config{MaxRunBytes: 1000})
	resp, data := postJSON(t, srv.URL+"/runs", `{"engine":"sa","k":16,"sweeps":5}`)
	if resp.StatusCode != 413 {
		t.Fatalf("HTTP = %d %s, want 413", resp.StatusCode, data)
	}

	// The fence fires BEFORE graph construction: a submission whose
	// dense model alone would dwarf the budget (~650MB at k=9000) must
	// bounce without building it. If the pre-construction gate
	// regresses, this takes minutes instead of microseconds.
	start := time.Now()
	resp, data = postJSON(t, srv.URL+"/runs", `{"engine":"mbrim","k":9000,"chips":4,"durationNS":100}`)
	if resp.StatusCode != 413 {
		t.Fatalf("oversize HTTP = %d %s, want 413", resp.StatusCode, data)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("oversize rejection took %v — the budget gate ran after graph construction", el)
	}
}

func TestNotAcceptingGate(t *testing.T) {
	srv, m, _ := newTestServer(t, Config{})
	m.SetAccepting(false)
	if _, err := m.SubmitWith(context.Background(), saRequest(8), SubmitOptions{}); !errors.Is(err, ErrNotAccepting) {
		t.Fatalf("err = %v, want ErrNotAccepting", err)
	}
	resp, _ := postJSON(t, srv.URL+"/runs", `{"engine":"sa","k":8,"sweeps":5}`)
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("HTTP = %d Retry-After=%q, want 503 with Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	m.SetAccepting(true)
	if _, err := m.SubmitWith(context.Background(), saRequest(8), SubmitOptions{}); err != nil {
		t.Fatalf("reopened gate refused: %v", err)
	}
	m.CancelAll()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	m.Wait(ctx)
}
