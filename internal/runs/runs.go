// Package runs is the live operations plane's run manager: it
// registers every in-flight core.Solve under a run ID, maintains a
// live progress view assembled incrementally from the run's own
// obs.Tracer event stream, retains recent events for replay, fans the
// stream out to any number of live subscribers (the SSE tail), and
// keeps the terminal state — outcome, error, checkpoint bytes — for
// later retrieval. The HTTP surface in this package (http.go) is what
// cmd/mbrimd serves and what cmd/mbrim mounts next to its pprof
// listener.
//
// A Manager owns a set of Runs. Submitting wires three sinks in front
// of any caller-supplied tracer: a progress reducer (the live view), a
// bounded Ring (recent-event replay), and a bounded Broadcast (live
// fan-out that never blocks the solve). The solve itself executes on a
// goroutine under a per-run context, so cancellation — and, for the
// multichip engines, the checkpoint carried by the resulting
// InterruptedError — flows through the PR 3 lifecycle machinery
// unchanged.
package runs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mbrim/internal/checkpoint"
	"mbrim/internal/core"
	"mbrim/internal/diag"
	"mbrim/internal/journal"
	"mbrim/internal/obs"
)

// State is a run's lifecycle phase.
type State string

// The run lifecycle. Pending covers the window between registration
// and the solve goroutine starting; Queued means admission accepted
// the run but MaxActive runs are executing — it dispatches when a slot
// frees. Interrupted means the run was cancelled and holds its
// best-so-far outcome (plus, for multichip engines, downloadable
// checkpoint bytes).
const (
	StatePending     State = "pending"
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateCompleted   State = "completed"
	StateInterrupted State = "interrupted"
	StateFailed      State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateInterrupted || s == StateFailed
}

// Progress is the live view of an in-flight solve, assembled
// incrementally from the run's event stream. All counters are
// cumulative over the run.
type Progress struct {
	// Engine is the solver kind from the RunStart event.
	Engine string `json:"engine"`
	// Phase is the coarse position: "submitted" → "annealing" (first
	// engine event) → "done" (RunEnd observed).
	Phase string `json:"phase"`
	// Epoch is the highest epoch (multichip) or sample ordinal seen.
	Epoch int `json:"epoch"`
	// Chips is the highest chip index seen plus one (0 for
	// single-chip/software engines).
	Chips int `json:"chips"`
	// Events counts every trace event observed.
	Events int64 `json:"events"`
	// Flips and BitChanges accumulate ChipStep / EpochSync counts.
	Flips      int64 `json:"flips"`
	BitChanges int64 `json:"bitChanges"`
	// BestEnergy is the lowest energy seen in EnergySample/RunEnd
	// events; HasEnergy reports whether any was observed yet.
	BestEnergy float64 `json:"bestEnergy"`
	LastEnergy float64 `json:"lastEnergy"`
	HasEnergy  bool    `json:"hasEnergy"`
	// ModelNS is the latest model-time stamp seen.
	ModelNS float64 `json:"modelNS"`
	// Faults, Recoveries and StepRetries count fault-layer and
	// numerical-guardrail activity.
	Faults      int64 `json:"faults"`
	Recoveries  int64 `json:"recoveries"`
	StepRetries int64 `json:"stepRetries"`
	// UpdatedWallNS is the wall clock of the last observed event.
	UpdatedWallNS int64 `json:"updatedWallNS"`
	// Entrants is the per-entrant live view when the run is a
	// portfolio race, keyed by entrant origin ("e0", "e1", …; the
	// hand-off stage appears as the next index). Nil for ordinary runs.
	Entrants map[string]EntrantProgress `json:"entrants,omitempty"`
	// Winner is the winning entrant's origin key once the race's
	// portfolio_win event lands ("" until then); WinnerKind repeats the
	// winning engine's name.
	Winner     string `json:"winnerEntrant,omitempty"`
	WinnerKind string `json:"winnerKind,omitempty"`
}

// EntrantProgress is one portfolio entrant's slice of the live view,
// assembled from its origin-stamped inner stream plus the portfolio's
// entrant bracket events.
type EntrantProgress struct {
	// Engine is the entrant's solver kind.
	Engine string `json:"engine"`
	// Phase: "racing" → "done" (completed) or "cancelled" (lost the
	// race / hit the budget).
	Phase string `json:"phase"`
	// Events counts the entrant's own trace events.
	Events int64 `json:"events"`
	// BestEnergy/LastEnergy track the entrant's energy stream.
	BestEnergy float64 `json:"bestEnergy"`
	LastEnergy float64 `json:"lastEnergy"`
	HasEnergy  bool    `json:"hasEnergy"`
	// Won marks the race's win attribution.
	Won bool `json:"won,omitempty"`
}

// snapshot returns a copy safe to hand outside the run's lock (the
// entrant map is the only shared reference).
func (p Progress) snapshot() Progress {
	if p.Entrants != nil {
		ents := make(map[string]EntrantProgress, len(p.Entrants))
		for k, v := range p.Entrants {
			ents[k] = v
		}
		p.Entrants = ents
	}
	return p
}

// entrant returns the named entrant view, allocating lazily.
func (p *Progress) entrant(key string) EntrantProgress {
	if p.Entrants == nil {
		p.Entrants = map[string]EntrantProgress{}
	}
	return p.Entrants[key]
}

// observe folds one event into the view. Called under the run's lock.
func (p *Progress) observe(e obs.Event) {
	p.Events++
	if e.WallNS != 0 {
		p.UpdatedWallNS = e.WallNS
	}
	if e.Epoch > p.Epoch {
		p.Epoch = e.Epoch
	}
	if e.Chip+1 > p.Chips {
		p.Chips = e.Chip + 1
	}
	if e.ModelNS > p.ModelNS {
		p.ModelNS = e.ModelNS
	}
	if e.Origin != "" {
		// An origin-stamped event belongs to one portfolio entrant's
		// inner stream: fold it into that entrant's view (and the
		// top-level energy envelope) without letting the entrant's own
		// RunStart/RunEnd clobber the portfolio's engine/phase.
		p.observeEntrant(e)
		return
	}
	switch e.Kind {
	case obs.RunStart:
		p.Engine = e.Label
		p.Phase = "annealing"
	case obs.ChipStep:
		p.Flips += e.Count
	case obs.EpochSync:
		p.BitChanges += e.Count
	case obs.EnergySample, obs.RunEnd:
		p.LastEnergy = e.Value
		if !p.HasEnergy || e.Value < p.BestEnergy {
			p.BestEnergy = e.Value
		}
		p.HasEnergy = true
		if e.Kind == obs.RunEnd {
			p.Phase = "done"
		}
	case obs.Fault:
		p.Faults++
	case obs.Recovery:
		p.Recoveries++
	case obs.Numerical:
		if e.Label == "step-retry" {
			p.StepRetries += e.Count
		}
	case obs.EntrantStart:
		key := entrantKey(e.Chip)
		ent := p.entrant(key)
		ent.Engine = e.Label
		ent.Phase = "racing"
		p.Entrants[key] = ent
	case obs.EntrantEnd:
		key := entrantKey(e.Chip)
		ent := p.entrant(key)
		if ent.Engine == "" {
			ent.Engine = e.Label
		}
		if e.Count != 0 {
			ent.Phase = "cancelled"
		} else {
			ent.Phase = "done"
		}
		ent.LastEnergy = e.Value
		if !ent.HasEnergy || e.Value < ent.BestEnergy {
			ent.BestEnergy = e.Value
		}
		ent.HasEnergy = true
		p.Entrants[key] = ent
	case obs.PortfolioWin:
		key := entrantKey(e.Chip)
		ent := p.entrant(key)
		ent.Won = true
		p.Entrants[key] = ent
		p.Winner = key
		p.WinnerKind = e.Label
	}
}

// entrantKey maps an entrant index to its origin key ("e0", "e1", …).
func entrantKey(idx int) string { return fmt.Sprintf("e%d", idx) }

// observeEntrant folds one origin-stamped event into the entrant view.
func (p *Progress) observeEntrant(e obs.Event) {
	ent := p.entrant(e.Origin)
	ent.Events++
	switch e.Kind {
	case obs.RunStart:
		ent.Engine = e.Label
		if ent.Phase == "" {
			ent.Phase = "racing"
		}
	case obs.EnergySample, obs.RunEnd:
		ent.LastEnergy = e.Value
		if !ent.HasEnergy || e.Value < ent.BestEnergy {
			ent.BestEnergy = e.Value
		}
		ent.HasEnergy = true
		// The entrants' envelope is the portfolio's live energy view.
		p.LastEnergy = e.Value
		if !p.HasEnergy || e.Value < p.BestEnergy {
			p.BestEnergy = e.Value
		}
		p.HasEnergy = true
	}
	p.Entrants[e.Origin] = ent
}

// OutcomeSummary is the JSON-friendly projection of a core.Outcome —
// the solution metadata without the spin vector (which can be large;
// fetch it via the full outcome if needed).
type OutcomeSummary struct {
	Energy  float64            `json:"energy"`
	Cut     float64            `json:"cut,omitempty"`
	ModelNS float64            `json:"modelNS,omitempty"`
	WallNS  int64              `json:"wallNS"`
	Spins   int                `json:"spins"`
	Backend string             `json:"backend,omitempty"`
	Stats   map[string]float64 `json:"stats,omitempty"`
}

// Status is a run's externally visible state: what GET /runs/{id}
// returns.
type Status struct {
	ID            string          `json:"id"`
	State         State           `json:"state"`
	Engine        string          `json:"engine"`
	Spins         int             `json:"spins"`
	Seed          uint64          `json:"seed"`
	CreatedWallNS int64           `json:"createdWallNS"`
	EndedWallNS   int64           `json:"endedWallNS,omitempty"`
	Progress      Progress        `json:"progress"`
	Outcome       *OutcomeSummary `json:"outcome,omitempty"`
	Error         string          `json:"error,omitempty"`
	HasCheckpoint bool            `json:"hasCheckpoint"`
	// EventsDropped counts live-tail deliveries lost to slow
	// subscribers (the bounded fan-out's backpressure ledger).
	EventsDropped int64 `json:"eventsDropped,omitempty"`
	// Admission/supervision ledger: queue priority, time spent queued
	// (live while queued, final once dispatched), dispatch wall time,
	// the enforcement deadline, and supervised restarts survived.
	Priority       int   `json:"priority,omitempty"`
	QueueWaitNS    int64 `json:"queueWaitNS,omitempty"`
	StartedWallNS  int64 `json:"startedWallNS,omitempty"`
	DeadlineWallNS int64 `json:"deadlineWallNS,omitempty"`
	Restarts       int   `json:"restarts,omitempty"`
}

// Run is one registered solve. All mutable state is behind mu; the
// event sinks and the solve goroutine touch it concurrently with HTTP
// readers.
type Run struct {
	id    string
	mgr   *Manager
	req   core.Request
	ring  *obs.Ring
	bcast *obs.Broadcast
	diag  *diag.Reducer
	// done closes when the solve goroutine finished and the terminal
	// state is readable.
	done   chan struct{}
	cancel context.CancelFunc
	// rctx is the run's lifetime context (cancel + optional deadline);
	// dispatch checks it before spending a slot on a dead run.
	rctx context.Context
	// execReq is the request with the manager's sinks wired in, kept so
	// a queued run can dispatch later.
	execReq  core.Request
	priority int
	deadline time.Time
	// spec is the serialized submit body journaled for crash replay.
	spec []byte

	mu         sync.Mutex
	state      State
	created    time.Time
	queuedAt   time.Time
	started    time.Time
	ended      time.Time
	queueWait  time.Duration
	restarts   int
	progress   Progress
	outcome    *core.Outcome
	err        error
	checkpoint []byte
	// lastRef points at the newest durable checkpoint file (periodic
	// persistence); summary carries a recovered terminal outcome for
	// journal tombstones whose full outcome died with the old process.
	lastRef *checkpoint.Ref
	ckptSeq int
	summary *OutcomeSummary
}

// progressSink adapts a Run into a Tracer feeding its progress view.
type progressSink struct{ r *Run }

func (s progressSink) Emit(e obs.Event) {
	if e.WallNS == 0 {
		e.WallNS = time.Now().UnixNano()
	}
	s.r.mu.Lock()
	s.r.progress.observe(e)
	s.r.mu.Unlock()
}

// ID returns the run's identifier.
func (r *Run) ID() string { return r.id }

// Done returns a channel closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// Subscribe attaches a live event consumer (see obs.Broadcast).
func (r *Run) Subscribe() (<-chan obs.Event, func()) { return r.bcast.Subscribe() }

// Recent returns the retained recent events, oldest first.
func (r *Run) Recent() []obs.Event { return r.ring.Events() }

// EventsSince returns the retained events with emission ordinal > seq,
// oldest first, plus the ordinal of the first returned event (see
// obs.Ring.EventsSince) — the replay primitive behind SSE Last-Event-ID.
func (r *Run) EventsSince(seq int64) ([]obs.Event, int64) { return r.ring.EventsSince(seq) }

// EventsTotal returns how many trace events the run has emitted,
// including any already evicted from the retention ring.
func (r *Run) EventsTotal() int64 { return r.ring.Total() }

// Diag returns the live diagnostics snapshot assembled from the run's
// event stream: trajectory analytics, chip-pair disagreement, traffic
// attribution and the TTS estimate. See internal/diag.
func (r *Run) Diag() diag.Snapshot { return r.diag.Snapshot() }

// Cancel requests cancellation; the engine stops at its next natural
// boundary, and a still-queued run is shed immediately (state
// interrupted) without ever consuming an execution slot. Safe to call
// in any state.
func (r *Run) Cancel() {
	r.cancel()
	if r.mgr != nil {
		r.mgr.shedIfQueued(r)
	}
}

// Checkpoint returns the serialized resume envelope captured when the
// run was interrupted, or nil.
func (r *Run) Checkpoint() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checkpoint
}

// Outcome returns the terminal outcome (full, including spins) and
// error. Before the run finishes both are nil.
func (r *Run) Outcome() (*core.Outcome, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.outcome, r.err
}

// Status snapshots the run's externally visible state.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		ID:            r.id,
		State:         r.state,
		Engine:        string(r.req.Kind),
		Seed:          r.req.Seed,
		CreatedWallNS: r.created.UnixNano(),
		Progress:      r.progress.snapshot(),
		HasCheckpoint: len(r.checkpoint) > 0,
		EventsDropped: r.bcast.Dropped(),
	}
	if r.req.Model != nil {
		st.Spins = r.req.Model.N()
	}
	if !r.ended.IsZero() {
		st.EndedWallNS = r.ended.UnixNano()
	}
	st.Priority = r.priority
	st.Restarts = r.restarts
	if !r.deadline.IsZero() {
		st.DeadlineWallNS = r.deadline.UnixNano()
	}
	if !r.started.IsZero() {
		st.StartedWallNS = r.started.UnixNano()
	}
	switch {
	case r.queueWait > 0:
		st.QueueWaitNS = r.queueWait.Nanoseconds()
	case r.state == StateQueued:
		st.QueueWaitNS = time.Since(r.queuedAt).Nanoseconds()
	}
	if r.outcome == nil && r.summary != nil {
		// A journal tombstone: the full outcome died with the previous
		// process, but its recorded summary survives replay.
		s := *r.summary
		st.Outcome = &s
	}
	if r.outcome != nil {
		o := r.outcome
		st.Outcome = &OutcomeSummary{
			Energy:  o.Energy,
			Cut:     o.Cut,
			ModelNS: o.ModelNS,
			WallNS:  o.Wall.Nanoseconds(),
			Spins:   len(o.Spins),
			Backend: o.Backend,
			Stats:   o.Stats,
		}
	}
	if r.err != nil {
		st.Error = r.err.Error()
	}
	return st
}

// Config parameterizes a Manager.
type Config struct {
	// Registry receives the manager's own instruments and is the
	// default Metrics for submitted requests. Nil disables both.
	Registry *obs.Registry
	// RingSize bounds the per-run recent-event buffer. Default 4096.
	RingSize int
	// BroadcastBuffer bounds each live subscriber's channel. Default
	// obs.DefaultBroadcastBuffer.
	BroadcastBuffer int
	// MaxActive bounds concurrently executing runs. Beyond it, Submit
	// queues (when MaxQueued > 0) or returns ErrBusy. 0 means
	// unlimited.
	MaxActive int
	// MaxQueued bounds the admission queue behind MaxActive. 0 keeps
	// the historical behavior — saturate and reject with ErrBusy; a
	// positive value accepts up to that many queued runs and sheds the
	// rest with *QueueFullError (HTTP 429 + Retry-After).
	MaxQueued int
	// MaxSpins bounds submitted problem sizes at the HTTP boundary.
	// 0 applies DefaultMaxSpins.
	MaxSpins int
	// MaxRunBytes, when positive, rejects submissions whose estimated
	// resident footprint (see EstimateRunBytes) exceeds it.
	MaxRunBytes int64
	// DefaultBackend is the coupling backend applied to submitted runs
	// that do not name one. Empty leaves them on "auto".
	DefaultBackend string
	// Journal, when set, receives a durable record of every run
	// transition (submit/start/checkpoint/restart/terminal); StateDir
	// is where periodic checkpoints persist (a "checkpoints" subdir).
	// Both set enables crash recovery via Recover.
	Journal *journal.Writer
	// StateDir is the durability root shared with the journal.
	StateDir string
	// CheckpointEvery is the cadence of periodic durable checkpoints
	// for checkpointable (multichip) engines. 0 disables periodic
	// persistence (interrupt checkpoints still persist on drain).
	CheckpointEvery time.Duration
	// RetainRuns, when positive, bounds how many terminal runs stay
	// registered: each time a run finishes, the oldest terminal runs
	// beyond the bound are evicted — their run-labeled diag_* registry
	// series released (a daemon that never releases them leaks metric
	// cardinality linearly in runs served), their rings freed, their
	// IDs gone from the HTTP surface. Live runs never count against the
	// bound, and durable interrupt checkpoints on disk are kept — the
	// eviction is an in-memory retention policy, not a durability one.
	// 0 retains everything (the historical behavior).
	RetainRuns int
}

// DefaultMaxSpins bounds the problem size accepted over HTTP when the
// manager does not configure its own limit.
const DefaultMaxSpins = 1 << 16

// ErrBusy reports that MaxActive runs are already executing.
var ErrBusy = errors.New("runs: manager at capacity")

// ErrNotFound reports an unknown run ID.
var ErrNotFound = errors.New("runs: no such run")

// Manager registers and executes runs.
type Manager struct {
	cfg Config
	reg *obs.Registry

	// accepting gates new submissions; the daemon flips it false while
	// replaying the journal and during drain.
	accepting atomic.Bool

	mu       sync.Mutex
	runs     map[string]*Run
	order    []string
	seq      int
	active   int
	queue    []*Run  // admitted, waiting for a slot (priority, then FIFO)
	wallEWMA float64 // smoothed run wall seconds, feeds Retry-After
}

// NewManager returns a manager with the given configuration.
func NewManager(cfg Config) *Manager {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	if cfg.MaxSpins <= 0 {
		cfg.MaxSpins = DefaultMaxSpins
	}
	m := &Manager{cfg: cfg, reg: cfg.Registry, runs: map[string]*Run{}}
	m.accepting.Store(true)
	m.initStateDir()
	if m.reg != nil {
		m.reg.SetHelp("runs.active", "Solves currently executing under the run manager.")
		m.reg.SetHelp("runs.submitted", "Runs accepted by the run manager since start.")
		m.reg.SetHelp("runs.finished", "Runs reaching a terminal state, by engine and state.")
		m.reg.SetHelp("runs.wall_ns", "Wall-clock duration of finished runs, by engine.")
		m.reg.SetHelp("runs.queue_depth", "Runs waiting in the admission queue.")
		m.reg.SetHelp("runs.queue_wait_ns", "Admission-queue wait of dispatched runs.")
		m.reg.SetHelp("runs.queue_rejected_total", "Submissions shed with 429: queue at MaxQueued.")
		m.reg.SetHelp("runs.shed_total", "Runs shed for an expired deadline.")
		m.reg.SetHelp("runs.rejected_too_large_total", "Submissions refused by the memory-budget check.")
		m.reg.SetHelp("runs.restarts_total", "Supervised restart-once recoveries after an engine panic.")
		m.reg.SetHelp("runs.checkpoints_persisted_total", "Durable periodic checkpoints written.")
		m.reg.SetHelp("runs.evicted_total", "Terminal runs evicted by the retention bound.")
		m.reg.SetHelp("runs.diag_series_released_total", "Run-labeled diag series released on retention eviction.")
	}
	return m
}

// SetAccepting opens or closes the submission gate. While closed,
// Submit returns ErrNotAccepting (HTTP 503); runs already admitted
// keep executing. The daemon closes the gate during journal replay
// and drain.
func (m *Manager) SetAccepting(v bool) { m.accepting.Store(v) }

// Submit registers req and starts solving it on a goroutine. The
// request's Tracer is composed with the run's progress, replay and
// fan-out sinks; its Metrics defaults to the manager's registry.
// Equivalent to SubmitWith with zero options.
func (m *Manager) Submit(ctx context.Context, req core.Request) (*Run, error) {
	return m.SubmitWith(ctx, req, SubmitOptions{})
}

// execute runs the solve and publishes the terminal state.
func (m *Manager) execute(ctx context.Context, r *Run, req core.Request) {
	// Panic isolation: core.SolveCtx already converts engine panics
	// into *core.PanicError, so anything reaching this recover is a
	// manager-layer bug — contain it to the run instead of killing the
	// daemon.
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			m.finish(r, req, start, nil, fmt.Errorf("runs: run goroutine panic: %v", p))
		}
	}()

	r.mu.Lock()
	r.state = StateRunning
	r.started = time.Now()
	if !r.queuedAt.IsZero() {
		r.queueWait = r.started.Sub(r.queuedAt)
	}
	wait := r.queueWait
	r.mu.Unlock()
	m.journalAppend(journal.Record{Type: journal.TypeStart, ID: r.id})
	if wait > 0 {
		// Make the wait attributable: a synthetic span in the run's own
		// event stream (diag folds it into the snapshot) plus the
		// aggregate histogram.
		emitQueueWait(req.Tracer, wait)
		m.reg.Histogram("runs.queue_wait_ns").Observe(float64(wait.Nanoseconds()))
	}
	out, err := m.supervisedSolve(ctx, r, req)
	m.finish(r, req, start, out, err)
}

// finish publishes a run's terminal state exactly once: the journal
// terminal record (and, for interrupts, the final durable checkpoint),
// metrics, the closed live tail, and the next queued dispatch.
func (m *Manager) finish(r *Run, req core.Request, start time.Time, out *core.Outcome, err error) {
	r.mu.Lock()
	if r.state.Terminal() {
		r.mu.Unlock()
		return
	}
	r.ended = time.Now()
	var intr *core.InterruptedError
	switch {
	case err == nil:
		r.state = StateCompleted
		r.outcome = out
	case errors.As(err, &intr):
		r.state = StateInterrupted
		r.outcome = intr.Outcome
		r.checkpoint = intr.Checkpoint
		r.err = err
	default:
		r.state = StateFailed
		r.err = err
	}
	state := r.state
	ck := r.checkpoint
	r.mu.Unlock()

	m.mu.Lock()
	m.active--
	m.observeWallLocked(time.Since(start))
	m.mu.Unlock()
	m.reg.Gauge("runs.active").Add(-1)
	m.reg.CounterWith("runs.finished", obs.Labels{
		"engine": string(req.Kind), "state": string(state)}).Inc()
	m.reg.HistogramWith("runs.wall_ns", obs.Labels{"engine": string(req.Kind)}).
		Observe(float64(time.Since(start).Nanoseconds()))
	// Durable tail: an interrupt's final checkpoint (the drain path —
	// restart resumes from it), then the terminal record.
	if state == StateInterrupted && len(ck) > 0 && m.durable() {
		m.persistCheckpoint(r, ck)
	}
	m.journalTerminal(r, state)
	if state == StateCompleted {
		m.dropCheckpointFile(r)
	}
	// Release the run's cancel context, close the live tail, then
	// signal terminal state.
	r.cancel()
	r.bcast.Close()
	close(r.done)
	m.dispatch()
	m.evictExpired()
}

// evictExpired enforces Config.RetainRuns: the oldest terminal runs
// beyond the bound are deregistered and their run-labeled diag series
// released. Live and queued runs never count against the bound.
func (m *Manager) evictExpired() {
	if m.cfg.RetainRuns <= 0 {
		return
	}
	var evicted []*Run
	m.mu.Lock()
	terminal := make([]string, 0, len(m.order))
	for _, id := range m.order {
		r := m.runs[id]
		if r == nil {
			continue
		}
		r.mu.Lock()
		if r.state.Terminal() {
			terminal = append(terminal, id)
		}
		r.mu.Unlock()
	}
	for i := 0; i < len(terminal)-m.cfg.RetainRuns; i++ {
		evicted = append(evicted, m.runs[terminal[i]])
		delete(m.runs, terminal[i])
	}
	if len(evicted) > 0 {
		keep := m.order[:0]
		for _, id := range m.order {
			if _, ok := m.runs[id]; ok {
				keep = append(keep, id)
			}
		}
		m.order = keep
	}
	m.mu.Unlock()
	for _, r := range evicted {
		released := r.diag.Release()
		m.reg.Counter("runs.evicted_total").Inc()
		m.reg.Counter("runs.diag_series_released_total").Add(int64(released))
	}
}

// Get returns the run with the given ID.
func (m *Manager) Get(id string) (*Run, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	return r, ok
}

// Cancel cancels the identified run; ErrNotFound for unknown IDs.
func (m *Manager) Cancel(id string) error {
	r, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	r.Cancel()
	return nil
}

// List snapshots every run's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	runs := make([]*Run, 0, len(order))
	for _, id := range order {
		runs = append(runs, m.runs[id])
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.Status())
	}
	return out
}

// Active returns the number of currently executing runs.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// CancelAll cancels every non-terminal run and returns their IDs,
// sorted — the drain step of a graceful shutdown. Queued runs are shed
// immediately (they will never get a slot during a drain); executing
// runs stop at their next engine boundary.
func (m *Manager) CancelAll() []string {
	m.mu.Lock()
	queued := m.queue
	m.queue = nil
	m.gaugeQueueDepthLocked()
	var cancelled []string
	for id, r := range m.runs {
		r.mu.Lock()
		terminal := r.state.Terminal()
		r.mu.Unlock()
		if !terminal {
			r.cancel()
			cancelled = append(cancelled, id)
		}
	}
	m.mu.Unlock()
	for _, r := range queued {
		m.finishQueued(r, StateInterrupted, errors.New("runs: cancelled while queued"))
	}
	sort.Strings(cancelled)
	return cancelled
}

// Wait blocks until every registered run reaches a terminal state or
// the context expires; it reports whether the drain completed.
func (m *Manager) Wait(ctx context.Context) bool {
	m.mu.Lock()
	runs := make([]*Run, 0, len(m.runs))
	for _, r := range m.runs {
		runs = append(runs, r)
	}
	m.mu.Unlock()
	for _, r := range runs {
		select {
		case <-r.Done():
		case <-ctx.Done():
			return false
		}
	}
	return true
}
