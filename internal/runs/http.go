package runs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mbrim/internal/core"
	"mbrim/internal/graph"
	"mbrim/internal/lattice"
	"mbrim/internal/obs"
	"mbrim/internal/portfolio"
	"mbrim/internal/rng"
)

// This file is the operations plane's HTTP surface:
//
//	GET  /engines               registered engines + capabilities
//	POST /runs                  submit a problem (JSON body below)
//	GET  /runs                  list run statuses
//	GET  /runs/{id}             one run's status
//	GET  /runs/{id}/events      SSE live tail of the trace stream
//	GET  /runs/{id}/diag        convergence / partition-quality snapshot
//	GET  /runs/{id}/trace       Chrome trace-event JSON (ui.perfetto.dev)
//	POST /runs/{id}/cancel      context cancellation
//	GET  /runs/{id}/checkpoint  download the resume envelope
//	GET  /metrics               Prometheus text exposition
//	GET  /metrics.json          expvar-style JSON snapshot
//	GET  /healthz               liveness (always 200 while serving)
//	GET  /readyz                readiness (503 once draining)
//
// Everything is stdlib net/http; patterns use Go 1.22+ method routing
// and PathValue.

// SubmitRequest is the POST /runs body. The problem is either a
// generated K-graph (k > 0, seeded by graphSeed) or an explicit edge
// list over n vertices (1-based endpoints, Gset convention). Omitted
// solver knobs inherit the core defaults.
type SubmitRequest struct {
	// Engine is the solver kind (see core.Kinds). Required.
	Engine string `json:"engine"`
	// K generates a seeded complete ±1 graph K_k.
	K int `json:"k,omitempty"`
	// GraphSeed seeds the generated graph (default 1).
	GraphSeed uint64 `json:"graphSeed,omitempty"`
	// N and Edges give an explicit graph: n vertices, [u, v, w] rows
	// with 1-based u, v.
	N     int          `json:"n,omitempty"`
	Edges [][3]float64 `json:"edges,omitempty"`

	Seed              uint64  `json:"seed,omitempty"`
	Runs              int     `json:"runs,omitempty"`
	Sweeps            int     `json:"sweeps,omitempty"`
	Steps             int     `json:"steps,omitempty"`
	DurationNS        float64 `json:"durationNS,omitempty"`
	Chips             int     `json:"chips,omitempty"`
	EpochNS           float64 `json:"epochNS,omitempty"`
	Coordinated       bool    `json:"coordinated,omitempty"`
	Channels          int     `json:"channels,omitempty"`
	ChannelBytesPerNS float64 `json:"channelBytesPerNS,omitempty"`
	SampleEveryNS     float64 `json:"sampleEveryNS,omitempty"`
	Parallel          bool    `json:"parallel,omitempty"`
	// Backend selects the coupling-matrix backend ("auto", "dense",
	// "csr" or "blocked"); empty means auto. Bit-identical — only host
	// time moves.
	Backend string `json:"backend,omitempty"`
	// Priority orders the admission queue when -max-active is
	// saturated: higher dispatches first, ties FIFO. Executing runs are
	// never preempted.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS bounds the run's whole life, queue wait included, in
	// milliseconds from submission. A run that cannot finish in time is
	// shed (queued) or interrupted (executing). 0 means no deadline.
	DeadlineMS int64 `json:"deadlineMS,omitempty"`
	// Portfolio configures the "portfolio" engine: the entrant race
	// field (omit for structure-based auto-dispatch), the first-to-target
	// energy, the race budget and the optional warm-start hand-off stage.
	// Rejected with any other engine.
	Portfolio *core.PortfolioSpec `json:"portfolio,omitempty"`
}

// buildRequest turns a submit body into a core.Request, constructing
// the problem graph.
func (m *Manager) buildRequest(sr *SubmitRequest) (core.Request, error) {
	var req core.Request
	kind, err := core.ParseKind(sr.Engine)
	if err != nil {
		return req, err
	}
	var pspec core.PortfolioSpec
	if sr.Portfolio != nil {
		if kind != core.Portfolio {
			return req, fmt.Errorf("runs: a portfolio spec requires engine %q, not %q", core.Portfolio, kind)
		}
		// Validate the race field here so a malformed spec is a 400, not
		// a run that fails at dispatch.
		if err := portfolio.ValidateSpec(*sr.Portfolio); err != nil {
			return req, err
		}
		pspec = *sr.Portfolio
	}
	// The budget fence scales with the race width: every entrant is a
	// full concurrent solver over the shared model.
	workers := 1
	if kind == core.Portfolio {
		workers = len(pspec.Entrants)
		if workers == 0 {
			workers = portfolio.DefaultDispatchEntrants
		}
	}
	var g *graph.Graph
	switch {
	case sr.K > 0 && len(sr.Edges) > 0:
		return req, fmt.Errorf("runs: give k or edges, not both")
	case sr.K > 0:
		if sr.K > m.cfg.MaxSpins {
			return req, fmt.Errorf("runs: k=%d exceeds the %d-spin limit", sr.K, m.cfg.MaxSpins)
		}
		if err := m.checkBudget(sr.K, sr.Chips, workers); err != nil {
			return req, err
		}
		gseed := sr.GraphSeed
		if gseed == 0 {
			gseed = 1
		}
		g = graph.Complete(sr.K, rng.New(gseed))
	case len(sr.Edges) > 0:
		if sr.N < 2 {
			return req, fmt.Errorf("runs: edges need n >= 2 vertices")
		}
		if sr.N > m.cfg.MaxSpins {
			return req, fmt.Errorf("runs: n=%d exceeds the %d-spin limit", sr.N, m.cfg.MaxSpins)
		}
		if err := m.checkBudget(sr.N, sr.Chips, workers); err != nil {
			return req, err
		}
		g = graph.New(sr.N)
		for i, e := range sr.Edges {
			u, v, w := int(e[0]), int(e[1]), e[2]
			if u < 1 || u > sr.N || v < 1 || v > sr.N || u == v {
				return req, fmt.Errorf("runs: edge %d (%d,%d) out of range for n=%d", i, u, v, sr.N)
			}
			g.AddEdge(u-1, v-1, w)
		}
	default:
		return req, fmt.Errorf("runs: need k > 0 or an edge list")
	}
	seed := sr.Seed
	if seed == 0 {
		seed = 1
	}
	// The diagnostics plane (plateau detection, live TTS) needs an
	// energy trajectory, so multichip submissions that don't choose a
	// sampling cadence get ~100 samples over the run by default. Samples
	// are observational; the trajectory stays seed-determined. The
	// engines this applies to are keyed by capability (Resume — the
	// checkpointable model-time engines), not by name, so a new engine
	// declaring the capability inherits the policy.
	sampleEvery := sr.SampleEveryNS
	if sampleEvery == 0 {
		if caps, ok := core.EngineCaps(kind); ok && caps.Resume {
			d := sr.DurationNS
			if d == 0 {
				d = 100 // the core default duration
			}
			sampleEvery = d / 100
		}
	}
	backend := sr.Backend
	if backend == "" {
		backend = m.cfg.DefaultBackend
	}
	// Reject unknown backends here so the client gets a 400 instead of
	// a failed run.
	if _, err := lattice.ParseKind(backend); err != nil {
		return req, fmt.Errorf("runs: %v", err)
	}
	return core.Request{
		Kind:              kind,
		Model:             g.ToIsing(),
		Graph:             g,
		Seed:              seed,
		Runs:              sr.Runs,
		Sweeps:            sr.Sweeps,
		Steps:             sr.Steps,
		DurationNS:        sr.DurationNS,
		Chips:             sr.Chips,
		EpochNS:           sr.EpochNS,
		Coordinated:       sr.Coordinated,
		Channels:          sr.Channels,
		ChannelBytesPerNS: sr.ChannelBytesPerNS,
		SampleEveryNS:     sampleEvery,
		Parallel:          sr.Parallel,
		Backend:           backend,
		Portfolio:         pspec,
	}, nil
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// maxSubmitBody bounds the POST /runs body (explicit edge lists can
// be large, but not unbounded).
const maxSubmitBody = 64 << 20

// Routes registers the run endpoints on mux.
func (m *Manager) Routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /engines", m.handleEngines)
	mux.HandleFunc("POST /runs", m.handleSubmit)
	mux.HandleFunc("GET /runs", m.handleList)
	mux.HandleFunc("GET /runs/{id}", m.handleGet)
	mux.HandleFunc("POST /runs/{id}/cancel", m.handleCancel)
	mux.HandleFunc("GET /runs/{id}/events", m.handleEvents)
	mux.HandleFunc("GET /runs/{id}/checkpoint", m.handleCheckpoint)
	mux.HandleFunc("GET /runs/{id}/diag", m.handleDiag)
	mux.HandleFunc("GET /runs/{id}/trace", m.handleTrace)
	mux.HandleFunc("GET /runs/{id}/outcome", m.handleOutcome)
}

// Mount registers the full operations surface — run endpoints,
// Prometheus and JSON metrics, health and readiness — on mux. ready
// reports readiness (nil means always ready); it flips false when the
// daemon starts draining.
func Mount(mux *http.ServeMux, m *Manager, reg *obs.Registry, ready func() bool) {
	m.Routes(mux)
	mux.Handle("GET /metrics", reg.PromHandler())
	mux.Handle("GET /metrics.json", reg)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		if ready != nil && !ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sr SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("runs: parsing body: %w", err))
		return
	}
	req, err := m.buildRequest(&sr)
	if err != nil {
		var terr *TooLargeError
		if errors.As(err, &terr) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := SubmitOptions{Priority: sr.Priority}
	if sr.DeadlineMS > 0 {
		opts.Deadline = time.Now().Add(time.Duration(sr.DeadlineMS) * time.Millisecond)
	}
	// The canonical re-marshal (not the raw body) is what the journal
	// records: replay rebuilds the run from exactly the fields this
	// build understood.
	if spec, err := json.Marshal(&sr); err == nil {
		opts.Spec = spec
	}
	// The run outlives the submit request: solve under the manager's
	// lifetime, not the HTTP request context.
	run, err := m.SubmitWith(nil, req, opts)
	if err != nil {
		var qerr *QueueFullError
		var terr *TooLargeError
		switch {
		case errors.As(err, &qerr):
			// The overload-shedding contract: 429, with Retry-After
			// estimating the queue's drain time.
			w.Header().Set("Retry-After", strconv.Itoa(qerr.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrBusy), errors.Is(err, ErrNotAccepting):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.As(err, &terr):
			writeError(w, http.StatusRequestEntityTooLarge, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, run.Status())
}

// handleEngines serves the registry's view of the available solvers:
// every registered engine with its capability flags. This is derived
// from core's engine registry, not a hard-coded list — an engine
// linked into the daemon (including external registrants like the
// portfolio) appears here automatically.
func (m *Manager) handleEngines(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"engines": core.Engines()})
}

func (m *Manager) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": m.List()})
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	run, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, run.Status())
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	run, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	run.Cancel()
	// Report the state after the cancel landed (the engine may need a
	// moment to reach its next barrier; the client polls the status).
	writeJSON(w, http.StatusAccepted, run.Status())
}

func (m *Manager) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	run, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	st := run.Status()
	if !st.State.Terminal() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("runs: %s is %s; cancel it and wait for the interrupt", run.ID(), st.State))
		return
	}
	ck := run.Checkpoint()
	if len(ck) == 0 {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("runs: %s holds no checkpoint (state %s)", run.ID(), st.State))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", run.ID()+".ckpt"))
	_, _ = w.Write(ck)
}

// OutcomeBody is the GET /runs/{id}/outcome response: the full
// terminal outcome, spin vector included — the bit-identity surface
// the crash-recovery smoke compares against an uninterrupted reference
// run. encoding/json round-trips float64 exactly, so equality of the
// JSON numbers is equality of the bits.
type OutcomeBody struct {
	ID      string             `json:"id"`
	State   State              `json:"state"`
	Engine  string             `json:"engine"`
	Seed    uint64             `json:"seed"`
	Energy  float64            `json:"energy"`
	Cut     float64            `json:"cut,omitempty"`
	ModelNS float64            `json:"modelNS,omitempty"`
	WallNS  int64              `json:"wallNS"`
	Backend string             `json:"backend,omitempty"`
	Stats   map[string]float64 `json:"stats,omitempty"`
	Spins   []int8             `json:"spins"`
	// Portfolio carries the race ledger (winner attribution, per-entrant
	// results) when the run's engine was "portfolio". Nil otherwise.
	Portfolio *core.PortfolioReport `json:"portfolio,omitempty"`
	Error     string                `json:"error,omitempty"`
}

// handleOutcome serves a terminal run's full outcome. 409 while the
// run is live; 404 when no outcome is retained (a failed run, or a
// journal tombstone whose full outcome died with the old process —
// its summary is still on GET /runs/{id}).
func (m *Manager) handleOutcome(w http.ResponseWriter, r *http.Request) {
	run, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	st := run.Status()
	if !st.State.Terminal() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("runs: %s is %s; the outcome lands at a terminal state", run.ID(), st.State))
		return
	}
	out, rerr := run.Outcome()
	if out == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("runs: %s retains no full outcome (state %s)", run.ID(), st.State))
		return
	}
	body := OutcomeBody{
		ID: run.ID(), State: st.State, Engine: st.Engine, Seed: st.Seed,
		Energy: out.Energy, Cut: out.Cut, ModelNS: out.ModelNS,
		WallNS: out.Wall.Nanoseconds(), Backend: out.Backend,
		Stats: out.Stats, Spins: out.Spins, Portfolio: out.Portfolio,
	}
	if rerr != nil {
		body.Error = rerr.Error()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleDiag serves the run's live diagnostics snapshot: energy
// trajectory analytics (plateau, improvement rate, best staleness),
// per chip-pair shadow disagreement, traffic/stall attribution, and
// the live TTS estimate with Wilson confidence bounds. Works in any
// run state; the view simply reflects the events seen so far.
func (m *Manager) handleDiag(w http.ResponseWriter, r *http.Request) {
	run, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, run.Diag())
}

// handleTrace exports the run's retained events as Chrome trace-event
// JSON — load the download in ui.perfetto.dev (or chrome://tracing)
// for the span hierarchy, energy/fabric counters and fault instants.
// The ring bounds retention: for long runs the trace covers the most
// recent window, not the whole solve.
func (m *Manager) handleTrace(w http.ResponseWriter, r *http.Request) {
	run, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", run.ID()+".trace.json"))
	_ = obs.WriteChromeTrace(w, run.Recent())
}

// handleEvents streams the run's trace as Server-Sent Events: each
// event is one `event: trace` message carrying the obs.Event JSON,
// with an `id:` line holding the event's emission ordinal.
//
// Reconnection: a client presenting Last-Event-ID (per the SSE spec;
// ?lastEventID=N works too) resumes after that ordinal — the retained
// events it missed replay first with exact ids, then the live tail
// continues with best-effort ids (the live fan-out may drop under
// backpressure, in which case ids drift until the next reconnect
// resynchronizes them). Events older than the retention ring are gone;
// the first replayed id exposes the gap. ?replay=N prepends up to N
// retained events (replayed events may, in a narrow window, also
// arrive live — dedupe by id or WallNS if exactness matters). The
// stream ends with `event: done` carrying the final status once the
// run is terminal.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("runs: response writer cannot stream"))
		return
	}
	// An SSE stream lives as long as the client listens. Clear this
	// connection's read deadline so a server-wide ReadTimeout (set by
	// mbrimd to fence regular endpoints) cannot reap the stream
	// mid-tail; errors are ignored because not every transport supports
	// deadlines, and those that don't impose none.
	_ = http.NewResponseController(w).SetReadDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(kind string, id int64, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if id > 0 {
			if _, err := fmt.Fprintf(w, "id: %d\n", id); err != nil {
				return false
			}
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	lastID := int64(-1)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			lastID = n
		}
	} else if v := r.URL.Query().Get("lastEventID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			lastID = n
		}
	}

	// Subscribe before replay so no event can fall between the two.
	ch, cancel := run.Subscribe()
	defer cancel()
	var next int64 // ordinal for the next live-tail event
	switch {
	case lastID >= 0:
		events, first := run.EventsSince(lastID)
		id := first
		for _, e := range events {
			if !send("trace", id, e) {
				return
			}
			id++
		}
		next = id // == ring total + 1 when fully caught up
	default:
		if n := atoiDefault(r.URL.Query().Get("replay"), 0); n > 0 {
			events, first := run.EventsSince(0)
			if len(events) > n {
				first += int64(len(events) - n)
				events = events[len(events)-n:]
			}
			id := first
			for _, e := range events {
				if !send("trace", id, e) {
					return
				}
				id++
			}
		}
		next = run.EventsTotal() + 1
	}
	for {
		select {
		case e, open := <-ch:
			if !open {
				// Run finished: the broadcast closed. Emit the terminal
				// status and end the stream.
				send("done", 0, run.Status())
				return
			}
			if !send("trace", next, e) {
				return
			}
			next++
		case <-r.Context().Done():
			return
		}
	}
}

// atoiDefault parses s as a non-negative int, returning def on any
// failure.
func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 0 {
		return def
	}
	return n
}
