package runs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"mbrim/internal/core"
)

// TestSSEClientDisconnectMidStream pins the subscriber-cleanup
// contract: a client that walks away mid-stream of a LIVE run must be
// unsubscribed promptly, and its departure must not perturb the solve —
// even with a single-event broadcast buffer, the configuration most
// hostile to a wedged consumer.
func TestSSEClientDisconnectMidStream(t *testing.T) {
	srv, m, _ := newTestServer(t, Config{BroadcastBuffer: 1})

	_, body := postJSON(t, srv.URL+"/runs",
		`{"engine":"mbrim-seq","k":20,"seed":3,"durationNS":50000,"chips":4}`)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	run, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("run not registered")
	}

	// Attach a live tail and read until the first trace event proves
	// the stream (and the run) is in flight.
	stream, err := http.Get(srv.URL + "/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	if live := readSSE(t, sc, func(e sseEvent) bool { return e.kind == "trace" }); len(live) == 0 {
		t.Fatal("no live trace event")
	}
	if n := run.bcast.Subscribers(); n < 1 {
		t.Fatalf("subscribers = %d while a stream is attached", n)
	}

	// The client disconnects without ceremony. The handler must notice
	// via the request context and detach the subscriber.
	stream.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for run.bcast.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber not detached after disconnect (%d left)", run.bcast.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The solve must be unharmed: cancel it and verify the terminal
	// state round-trips, and a fresh stream still ends with done.
	if resp, b := postJSON(t, srv.URL+"/runs/"+st.ID+"/cancel", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel after disconnect = %d %s", resp.StatusCode, b)
	}
	waitDone(t, run)
	resp2, err := http.Get(srv.URL + "/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	msgs := readSSE(t, bufio.NewScanner(resp2.Body), func(e sseEvent) bool { return e.kind == "done" })
	if len(msgs) == 0 || msgs[len(msgs)-1].kind != "done" {
		t.Fatalf("post-disconnect stream ended without done (%d messages)", len(msgs))
	}
	var final Status
	if err := json.Unmarshal(msgs[len(msgs)-1].data, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateInterrupted {
		t.Fatalf("state = %s, want interrupted", final.State)
	}
}

// TestCheckpointRoundTripUnderConcurrentCancel races a crowd of
// cancellers and checkpoint downloaders against one live run: every
// response must be well-formed (202 for cancels; 409-then-200 for
// downloads, never a 5xx), all successful downloads must serve the
// same bytes, and the envelope must resume to the uninterrupted run's
// exact bits.
func TestCheckpointRoundTripUnderConcurrentCancel(t *testing.T) {
	const k, durationNS = 20, 10000.0
	baseline, err := core.Solve(mbrimSeqRequest(k, durationNS))
	if err != nil {
		t.Fatal(err)
	}

	srv, m, _ := newTestServer(t, Config{})
	_, body := postJSON(t, srv.URL+"/runs",
		fmt.Sprintf(`{"engine":"mbrim-seq","k":%d,"seed":3,"durationNS":%g,"chips":4}`, k, durationNS))
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	run, _ := m.Get(st.ID)

	// Wait for the run to be genuinely in flight before unleashing the
	// crowd, so the cancel interrupts rather than pre-empts.
	stream, err := http.Get(srv.URL + "/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if live := readSSE(t, bufio.NewScanner(stream.Body), func(e sseEvent) bool { return e.kind == "trace" }); len(live) == 0 {
		t.Fatal("no live trace event")
	}
	stream.Body.Close()

	const crowd = 8
	var wg sync.WaitGroup
	statuses := make([]int, 2*crowd)
	bodies := make([][]byte, 2*crowd)
	for i := 0; i < crowd; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/runs/"+st.ID+"/cancel", "application/json", nil)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/runs/" + st.ID + "/checkpoint")
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			statuses[crowd+i] = resp.StatusCode
			bodies[crowd+i] = b
		}(i)
	}
	wg.Wait()
	waitDone(t, run)

	for i := 0; i < crowd; i++ {
		if statuses[i] != http.StatusAccepted {
			t.Fatalf("concurrent cancel %d = %d", i, statuses[i])
		}
	}
	for i := crowd; i < 2*crowd; i++ {
		if statuses[i] != http.StatusConflict && statuses[i] != http.StatusOK {
			t.Fatalf("racing checkpoint download %d = %d (want 409 or 200)", i-crowd, statuses[i])
		}
	}

	// Post-interrupt, every download must serve identical bytes...
	finals := make([][]byte, crowd)
	for i := 0; i < crowd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/runs/" + st.ID + "/checkpoint")
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("terminal checkpoint download = %d %s", resp.StatusCode, b)
				return
			}
			finals[i] = b
		}(i)
	}
	wg.Wait()
	for i := 1; i < crowd; i++ {
		if !bytes.Equal(finals[i], finals[0]) {
			t.Fatalf("download %d differs from download 0", i)
		}
	}
	// ...any 200 that raced the interrupt must match them too...
	for i := crowd; i < 2*crowd; i++ {
		if statuses[i] == http.StatusOK && !bytes.Equal(bodies[i], finals[0]) {
			t.Fatalf("racing 200 download %d served different bytes", i-crowd)
		}
	}
	// ...and the envelope must resume to the baseline's exact bits.
	req := mbrimSeqRequest(k, durationNS)
	req.Resume = finals[0]
	resumed, err := core.Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Energy != baseline.Energy {
		t.Fatalf("resumed energy %v != baseline %v", resumed.Energy, baseline.Energy)
	}
	if !bytes.Equal(int8Bytes(resumed.Spins), int8Bytes(baseline.Spins)) {
		t.Fatal("resumed spins differ from the uninterrupted run")
	}
}
