package runs

import (
	"context"
	"path/filepath"
	"testing"

	"mbrim/internal/core"
	"mbrim/internal/graph"
	"mbrim/internal/journal"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

// The A/B pair behind BENCH_ops.json: the identical concurrent-mode
// solve run bare (the way the CLI and the experiment harness call it)
// versus through the run manager with all three operations-plane sinks
// attached — progress reducer, replay ring, live broadcast with one
// draining subscriber. The acceptance bound is that attachment stays
// within noise (~2%) of the detached solve.

func benchRequest() core.Request {
	g := graph.Complete(64, rng.New(1))
	return core.Request{Kind: core.MBRIMConcurrent, Model: g.ToIsing(), Graph: g,
		Seed: 7, DurationNS: 200, Chips: 4}
}

func BenchmarkSolveDetached(b *testing.B) {
	req := benchRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveManaged(b *testing.B) {
	req := benchRequest()
	m := NewManager(Config{Registry: obs.NewRegistry()})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := m.Submit(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		ch, cancel := r.Subscribe()
		go func() {
			for range ch {
			}
		}()
		<-r.Done()
		cancel()
		if _, err := r.Outcome(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveJournaled is the same managed solve with the full
// durability layer on: fsync'd journal write-through plus the
// segmented-checkpoint machinery (the 2s default cadence never fires at
// this problem size, so the cost measured is the per-run record
// overhead — three fsync'd appends — not checkpoint I/O). Not part of
// the A/B acceptance bound; it quantifies what -state-dir costs when
// you opt in.
func BenchmarkSolveJournaled(b *testing.B) {
	req := benchRequest()
	dir := b.TempDir()
	reg := obs.NewRegistry()
	jw, err := journal.Open(filepath.Join(dir, "run.journal"), reg)
	if err != nil {
		b.Fatal(err)
	}
	defer jw.Close()
	m := NewManager(Config{Registry: reg, Journal: jw, StateDir: dir})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := m.Submit(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		ch, cancel := r.Subscribe()
		go func() {
			for range ch {
			}
		}()
		<-r.Done()
		cancel()
		if _, err := r.Outcome(); err != nil {
			b.Fatal(err)
		}
	}
}
