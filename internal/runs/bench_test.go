package runs

import (
	"context"
	"testing"

	"mbrim/internal/core"
	"mbrim/internal/graph"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

// The A/B pair behind BENCH_ops.json: the identical concurrent-mode
// solve run bare (the way the CLI and the experiment harness call it)
// versus through the run manager with all three operations-plane sinks
// attached — progress reducer, replay ring, live broadcast with one
// draining subscriber. The acceptance bound is that attachment stays
// within noise (~2%) of the detached solve.

func benchRequest() core.Request {
	g := graph.Complete(64, rng.New(1))
	return core.Request{Kind: core.MBRIMConcurrent, Model: g.ToIsing(), Graph: g,
		Seed: 7, DurationNS: 200, Chips: 4}
}

func BenchmarkSolveDetached(b *testing.B) {
	req := benchRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveManaged(b *testing.B) {
	req := benchRequest()
	m := NewManager(Config{Registry: obs.NewRegistry()})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := m.Submit(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		ch, cancel := r.Subscribe()
		go func() {
			for range ch {
			}
		}()
		<-r.Done()
		cancel()
		if _, err := r.Outcome(); err != nil {
			b.Fatal(err)
		}
	}
}
