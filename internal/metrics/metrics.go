// Package metrics provides the measurement plumbing for the
// experimental harness: summary statistics over runs, (x, y) series
// for the paper's figures, and the model-time/wall-time ledger that
// the paper's mixed methodology requires (BRIM results are reported in
// simulated circuit time, SA/SBM results in measured execution time).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N         int
	Min, Max  float64
	Mean, Std float64
	Median    float64
	P10, P90  float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary with N = 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	ss := 0.0
	for _, v := range sorted {
		d := v - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	s.Median = Percentile(sorted, 50)
	s.P10 = Percentile(sorted, 10)
	s.P90 = Percentile(sorted, 90)
	return s
}

// Percentile returns the p-th percentile (0..100) of an already sorted
// sample using linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: Percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points — one line of a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Table renders series as aligned text columns for terminal output;
// every harness subcommand prints its figure this way.
func Table(header string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", header)
	for _, s := range series {
		fmt.Fprintf(&b, "## series: %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%16.6g %16.6g\n", p.X, p.Y)
		}
	}
	return b.String()
}

// Clock separates the two time axes of the evaluation:
//
//   - Model time: nanoseconds of simulated circuit time accumulated by
//     a dynamical-system solver (BRIM). 1 unit = 1 ns of the machine's
//     own physics, regardless of how long the host takes to simulate it.
//   - Wall time: host execution time of a computational solver (SA,
//     SBM), measured with time.Now.
//
// Speedup claims in the paper divide one by the other; keeping them in
// one struct keeps that division explicit.
type Clock struct {
	ModelNS float64
	Wall    time.Duration
}

// AddModel accumulates simulated nanoseconds.
func (c *Clock) AddModel(ns float64) { c.ModelNS += ns }

// Time runs f and accumulates its wall time.
func (c *Clock) Time(f func()) {
	start := time.Now()
	f()
	c.Wall += time.Since(start)
}

// SpeedupOver returns other's wall time divided by c's model time —
// "how much faster is this machine than that solver". Zero model time
// yields +Inf for a nonzero numerator and NaN for zero/zero.
func (c *Clock) SpeedupOver(other *Clock) float64 {
	return float64(other.Wall.Nanoseconds()) / c.ModelNS
}

// OpCounter tallies abstract operations (multiply-accumulates, spin
// updates, instructions). The first-principles analysis of Sec 6.4.1
// ("~140,000 instructions per spin flip") is reproduced with these.
type OpCounter struct {
	counts map[string]int64
}

// NewOpCounter returns an empty counter.
func NewOpCounter() *OpCounter { return &OpCounter{counts: make(map[string]int64)} }

// Add increments the named counter by n.
func (o *OpCounter) Add(name string, n int64) { o.counts[name] += n }

// Get returns the named counter's value.
func (o *OpCounter) Get(name string) int64 { return o.counts[name] }

// Names returns the counter names in sorted order.
func (o *OpCounter) Names() []string {
	names := make([]string, 0, len(o.counts))
	for k := range o.counts {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders all counters, one per line, sorted by name.
func (o *OpCounter) String() string {
	var b strings.Builder
	for _, k := range o.Names() {
		fmt.Fprintf(&b, "%s: %d\n", k, o.counts[k])
	}
	return b.String()
}

// Figure is the JSON-serializable form of a set of series — the
// machine-readable counterpart of Table for downstream plotting.
type Figure struct {
	Header string    `json:"header"`
	Series []*Series `json:"series"`
}

// WriteJSON emits the series as indented JSON.
func WriteJSON(w io.Writer, header string, series ...*Series) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Figure{Header: header, Series: series})
}

// ReadJSON parses a Figure written by WriteJSON.
func ReadJSON(r io.Reader) (*Figure, error) {
	var f Figure
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}
