package metrics

import "mbrim/internal/lattice"

// PartitionQuality scores one slicing of a coupling graph — the
// figures of merit for multi-chip (and multi-node) partitioning: how
// much coupling weight the cut severs, how many spins sit on a
// boundary (each one is a shadow spin everywhere else), and how even
// the slice sizes are.
type PartitionQuality struct {
	// CutWeightFraction is Σ|J_ij| over cut edges divided by Σ|J_ij|
	// over all edges (0 when the graph has no edges).
	CutWeightFraction float64 `json:"cutWeightFraction"`
	// BoundarySpinFraction is the fraction of spins with at least one
	// coupling into another part.
	BoundarySpinFraction float64 `json:"boundarySpinFraction"`
	// Imbalance is max part size over mean part size, minus one —
	// 0 for a perfectly even split.
	Imbalance float64 `json:"imbalance"`
	// CutEdges counts couplings crossing part boundaries (each edge
	// once).
	CutEdges int `json:"cutEdges"`
}

// MeasurePartition scores parts (disjoint spin index sets covering the
// graph) against the couplings in view. Spins absent from every part
// are ignored; parts may be any sizes.
func MeasurePartition(view lattice.Coupling, parts [][]int) PartitionQuality {
	n := view.N()
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	maxPart := 0
	for pi, p := range parts {
		for _, g := range p {
			if g >= 0 && g < n {
				part[g] = pi
			}
		}
		if len(p) > maxPart {
			maxPart = len(p)
		}
	}

	var totalW, cutW float64
	cutEdges := 0
	boundary := make([]bool, n)
	for i := 0; i < n; i++ {
		view.Scan(i, func(j int, v float64) {
			if j <= i {
				return // upper triangle: count each edge once
			}
			w := v
			if w < 0 {
				w = -w
			}
			totalW += w
			if part[i] != part[j] {
				cutW += w
				cutEdges++
				boundary[i], boundary[j] = true, true
			}
		})
	}

	q := PartitionQuality{CutEdges: cutEdges}
	if totalW > 0 {
		q.CutWeightFraction = cutW / totalW
	}
	covered := 0
	boundarySpins := 0
	for i := 0; i < n; i++ {
		if part[i] >= 0 {
			covered++
			if boundary[i] {
				boundarySpins++
			}
		}
	}
	if covered > 0 {
		q.BoundarySpinFraction = float64(boundarySpins) / float64(covered)
	}
	if len(parts) > 0 && covered > 0 {
		mean := float64(covered) / float64(len(parts))
		q.Imbalance = float64(maxPart)/mean - 1
	}
	return q
}
