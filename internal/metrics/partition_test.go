package metrics

import (
	"math"
	"testing"

	"mbrim/internal/lattice"
)

// ringLattice builds an n-cycle with unit couplings.
func ringLattice(n int) lattice.Coupling {
	j := make([]float64, n*n)
	for i := 0; i < n; i++ {
		k := (i + 1) % n
		j[i*n+k], j[k*n+i] = 1, 1
	}
	return lattice.FromDense(n, j, lattice.Dense, 0)
}

func TestMeasurePartitionRing(t *testing.T) {
	// An 8-cycle split into two contiguous halves cuts exactly 2 of its
	// 8 edges; the 4 endpoint spins are boundary spins.
	q := MeasurePartition(ringLattice(8), [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}})
	if q.CutEdges != 2 {
		t.Errorf("cut edges: %d, want 2", q.CutEdges)
	}
	if math.Abs(q.CutWeightFraction-0.25) > 1e-15 {
		t.Errorf("cut weight fraction: %v, want 0.25", q.CutWeightFraction)
	}
	if math.Abs(q.BoundarySpinFraction-0.5) > 1e-15 {
		t.Errorf("boundary spin fraction: %v, want 0.5", q.BoundarySpinFraction)
	}
	if q.Imbalance != 0 {
		t.Errorf("imbalance: %v, want 0", q.Imbalance)
	}
}

func TestMeasurePartitionImbalance(t *testing.T) {
	// 6 spins split 5/1: max/mean - 1 = 5/3 - 1.
	q := MeasurePartition(ringLattice(6), [][]int{{0, 1, 2, 3, 4}, {5}})
	want := 5.0/3.0 - 1
	if math.Abs(q.Imbalance-want) > 1e-15 {
		t.Errorf("imbalance: %v, want %v", q.Imbalance, want)
	}
}

func TestMeasurePartitionSinglePart(t *testing.T) {
	// Everything in one part: nothing is cut.
	q := MeasurePartition(ringLattice(5), [][]int{{0, 1, 2, 3, 4}})
	if q.CutEdges != 0 || q.CutWeightFraction != 0 || q.BoundarySpinFraction != 0 {
		t.Errorf("single part should cut nothing: %+v", q)
	}
}
