package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTTSKnownValues(t *testing.T) {
	// p = q: one run suffices in expectation → TTS = t exactly when
	// ln(1-q)/ln(1-p) = 1.
	if got := TTS(10, 0.99, 0.99); math.Abs(got-10) > 1e-9 {
		t.Fatalf("TTS(10, .99, .99) = %v, want 10", got)
	}
	// p = 0.5, q = 0.99: need log(0.01)/log(0.5) ≈ 6.64 runs.
	want := 10 * math.Log(0.01) / math.Log(0.5)
	if got := TTS(10, 0.5, 0.99); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TTS = %v, want %v", got, want)
	}
}

func TestTTSEdges(t *testing.T) {
	if !math.IsInf(TTS(1, 0, 0.99), 1) {
		t.Fatal("p=0 should give +Inf")
	}
	if got := TTS(7, 1, 0.99); got != 7 {
		t.Fatalf("p=1 should give t, got %v", got)
	}
	if got := TTS(7, 1.5, 0.99); got != 7 {
		t.Fatalf("p>1 should clamp to t, got %v", got)
	}
}

func TestTTSMonotoneInP(t *testing.T) {
	// Higher success probability can never need more time.
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%999+1) / 1000
		b := float64(bRaw%999+1) / 1000
		if a > b {
			a, b = b, a
		}
		return TTS(1, b, 0.99) <= TTS(1, a, 0.99)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTTSPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero t": func() { TTS(0, 0.5, 0.99) },
		"q=0":    func() { TTS(1, 0.5, 0) },
		"q=1":    func() { TTS(1, 0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSuccessProbability(t *testing.T) {
	energies := []float64{-10, -9, -8, -5}
	if p := SuccessProbability(energies, -9, 0); p != 0.5 {
		t.Fatalf("p = %v, want 0.5", p)
	}
	if p := SuccessProbability(energies, -10, 0); p != 0.25 {
		t.Fatalf("p = %v, want 0.25", p)
	}
	if p := SuccessProbability(energies, -9, 1); p != 0.75 {
		t.Fatalf("tolerance ignored: p = %v", p)
	}
	if p := SuccessProbability(nil, 0, 0); p != 0 {
		t.Fatalf("empty sample p = %v", p)
	}
}

func TestTTSFromRuns(t *testing.T) {
	energies := []float64{-10, -10, -8, -7}
	got := TTSFromRuns(5, energies, -10, 0, 0.99)
	want := TTS(5, 0.5, 0.99)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TTSFromRuns = %v, want %v", got, want)
	}
	if !math.IsInf(TTSFromRuns(5, energies, -20, 0, 0.99), 1) {
		t.Fatal("unreachable target should give +Inf")
	}
}

func TestSuccessProbabilityCI(t *testing.T) {
	energies := []float64{-10, -9, -8, -5}
	p, lo, hi := SuccessProbabilityCI(energies, -9, 0, 0)
	if p != 0.5 {
		t.Fatalf("p = %v, want 0.5", p)
	}
	// Wilson 95% band for 2/4: roughly [0.15, 0.85].
	if !(lo > 0.1 && lo < 0.2 && hi > 0.8 && hi < 0.9) {
		t.Fatalf("95%% band [%v, %v] outside expected range", lo, hi)
	}
	if !(lo < p && p < hi) {
		t.Fatalf("point estimate %v outside band [%v, %v]", p, lo, hi)
	}

	// All hits: the band must stay below 1 with width > 0 (the whole
	// point of Wilson over the normal approximation).
	p, lo, hi = SuccessProbabilityCI([]float64{-10, -10, -10}, -10, 0, 0)
	if p != 1 || hi != 1 || lo >= 1 || lo < 0.3 {
		t.Fatalf("all-hit band = %v [%v, %v]", p, lo, hi)
	}
	// No hits: symmetric.
	p, lo, hi = SuccessProbabilityCI([]float64{-1, -1, -1}, -10, 0, 0)
	if p != 0 || lo != 0 || hi <= 0 || hi > 0.7 {
		t.Fatalf("no-hit band = %v [%v, %v]", p, lo, hi)
	}

	// A wider z widens the band.
	_, lo95, hi95 := SuccessProbabilityCI(energies, -9, 0, 1.96)
	_, lo99, hi99 := SuccessProbabilityCI(energies, -9, 0, 2.576)
	if !(lo99 < lo95 && hi99 > hi95) {
		t.Fatalf("z=2.576 band [%v,%v] not wider than z=1.96 [%v,%v]", lo99, hi99, lo95, hi95)
	}

	// Empty sample: maximally uninformative.
	p, lo, hi = SuccessProbabilityCI(nil, 0, 0, 0)
	if p != 0 || lo != 0 || hi != 1 {
		t.Fatalf("empty sample = %v [%v, %v], want 0 [0, 1]", p, lo, hi)
	}
}
