package metrics

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("Summary wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary has N != 0")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Std != 0 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize sorted the caller's slice")
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P10 && s.P10 <= s.Median &&
			s.Median <= s.P90 && s.P90 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileKnown(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if p := Percentile(sorted, 0); p != 10 {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(sorted, 100); p != 40 {
		t.Fatalf("P100 = %v", p)
	}
	if p := Percentile(sorted, 50); p != 25 {
		t.Fatalf("P50 = %v", p)
	}
}

func TestPercentileInterpolationProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		p := float64(pRaw % 101)
		v := Percentile(xs, p)
		return v >= xs[0] && v <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Percentile(nil, 50)
}

func TestSeriesAndTable(t *testing.T) {
	s := &Series{Name: "brim"}
	s.Add(1, 100)
	s.Add(2, 200)
	out := Table("fig", s)
	if !strings.Contains(out, "# fig") || !strings.Contains(out, "series: brim") {
		t.Fatalf("Table output missing headers:\n%s", out)
	}
	if !strings.Contains(out, "100") || !strings.Contains(out, "200") {
		t.Fatalf("Table output missing values:\n%s", out)
	}
}

func TestClockModelTime(t *testing.T) {
	var c Clock
	c.AddModel(1000)
	c.AddModel(500)
	if c.ModelNS != 1500 {
		t.Fatalf("ModelNS = %v", c.ModelNS)
	}
}

func TestClockWallTime(t *testing.T) {
	var c Clock
	c.Time(func() { time.Sleep(5 * time.Millisecond) })
	if c.Wall < 4*time.Millisecond {
		t.Fatalf("Wall = %v, want >= ~5ms", c.Wall)
	}
}

func TestSpeedupOver(t *testing.T) {
	brim := &Clock{ModelNS: 1000}            // 1 µs of machine time
	sa := &Clock{Wall: 2 * time.Millisecond} // 2 ms of CPU
	if s := brim.SpeedupOver(sa); math.Abs(s-2000) > 1e-9 {
		t.Fatalf("speedup = %v, want 2000", s)
	}
}

func TestOpCounter(t *testing.T) {
	o := NewOpCounter()
	o.Add("flips", 3)
	o.Add("flips", 4)
	o.Add("macs", 100)
	if o.Get("flips") != 7 || o.Get("macs") != 100 {
		t.Fatal("counter values wrong")
	}
	if o.Get("absent") != 0 {
		t.Fatal("absent counter nonzero")
	}
	names := o.Names()
	if len(names) != 2 || names[0] != "flips" || names[1] != "macs" {
		t.Fatalf("Names = %v", names)
	}
	str := o.String()
	if !strings.Contains(str, "flips: 7") || !strings.Contains(str, "macs: 100") {
		t.Fatalf("String = %q", str)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s1 := &Series{Name: "a"}
	s1.Add(1, 2)
	s1.Add(3, 4)
	s2 := &Series{Name: "b"}
	s2.Add(5, 6)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "fig", s1, s2); err != nil {
		t.Fatal(err)
	}
	fig, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Header != "fig" || len(fig.Series) != 2 {
		t.Fatalf("round trip lost structure: %+v", fig)
	}
	if fig.Series[0].Name != "a" || fig.Series[0].Points[1].Y != 4 {
		t.Fatal("round trip lost data")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("accepted garbage")
	}
}
