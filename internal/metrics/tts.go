package metrics

import (
	"fmt"
	"math"
)

// Time-to-solution (TTS) is the standard cross-machine metric in the
// Ising-machine literature (used by the SBM and CIM papers the
// evaluation compares against): the expected time to reach a target
// solution at least once with confidence q, given independent runs of
// duration t that each succeed with probability p:
//
//	TTS(q) = t · ln(1−q) / ln(1−p)
//
// With p = 0 the TTS is +Inf; with p ≥ 1 a single run suffices and
// TTS = t.

// TTS returns the time-to-solution at confidence q for runs of
// duration t (any time unit) succeeding with probability p.
func TTS(t, p, q float64) float64 {
	if t <= 0 {
		panic(fmt.Sprintf("metrics: TTS duration %v", t))
	}
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("metrics: TTS confidence %v", q))
	}
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return t
	}
	return t * math.Log(1-q) / math.Log(1-p)
}

// SuccessProbability estimates p from a batch of final energies
// against a target: the fraction of runs with energy ≤ target + tol.
func SuccessProbability(energies []float64, target, tol float64) float64 {
	if len(energies) == 0 {
		return 0
	}
	hits := 0
	for _, e := range energies {
		if e <= target+tol {
			hits++
		}
	}
	return float64(hits) / float64(len(energies))
}

// SuccessProbabilityCI is SuccessProbability with a Wilson score
// interval: it returns the point estimate p̂ together with the
// [lo, hi] confidence bounds at z standard normal deviates (z ≤ 0
// selects the conventional 95% band, z = 1.95996…). The Wilson
// interval stays inside [0, 1] and remains informative at the small
// run counts a live TTS estimate works with — unlike the normal
// approximation, it does not collapse to a zero-width band when every
// run hit (or missed) the target.
func SuccessProbabilityCI(energies []float64, target, tol, z float64) (p, lo, hi float64) {
	p = SuccessProbability(energies, target, tol)
	n := float64(len(energies))
	if n == 0 {
		return 0, 0, 1
	}
	if z <= 0 {
		z = 1.959963984540054
	}
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return p, lo, hi
}

// TTSFromRuns combines the two: the q-confidence TTS of a solver whose
// runs of duration t produced the given energies, targeting energy ≤
// target + tol. Zero successes yield +Inf, as they must.
func TTSFromRuns(t float64, energies []float64, target, tol, q float64) float64 {
	return TTS(t, SuccessProbability(energies, target, tol), q)
}
