package ising

import (
	"testing"
	"testing/quick"

	"mbrim/internal/rng"
)

func TestRandomSpinsValid(t *testing.T) {
	r := rng.New(1)
	s := RandomSpins(1000, r)
	if !ValidSpins(s) {
		t.Fatal("RandomSpins produced invalid values")
	}
}

func TestValidSpinsRejects(t *testing.T) {
	if ValidSpins([]int8{1, 0, -1}) {
		t.Fatal("ValidSpins accepted 0")
	}
	if ValidSpins([]int8{2}) {
		t.Fatal("ValidSpins accepted 2")
	}
	if !ValidSpins(nil) {
		t.Fatal("ValidSpins rejected empty")
	}
}

func TestCopySpinsIndependent(t *testing.T) {
	s := []int8{1, -1, 1}
	c := CopySpins(s)
	c[0] = -1
	if s[0] != 1 {
		t.Fatal("CopySpins aliases the input")
	}
}

func TestHammingDistance(t *testing.T) {
	a := []int8{1, 1, -1, -1}
	b := []int8{1, -1, -1, 1}
	if d := HammingDistance(a, b); d != 2 {
		t.Fatalf("HammingDistance = %d, want 2", d)
	}
	if d := HammingDistance(a, a); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestHammingDistancePanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	HammingDistance([]int8{1}, []int8{1, 1})
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed uint32, nRaw uint16) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw%500) + 1
		s := RandomSpins(n, r)
		got := UnpackSpins(PackSpins(s), n)
		return HammingDistance(got, s) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackSpinsSize(t *testing.T) {
	// The fabric charges ⌈N/8⌉ bytes per full-state broadcast; the wire
	// format must actually be that compact.
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65} {
		s := make([]int8, n)
		for i := range s {
			s[i] = 1
		}
		if got, want := len(PackSpins(s)), (n+7)/8; got != want {
			t.Fatalf("n=%d: packed %d bytes, want %d", n, got, want)
		}
	}
}

func TestMagnetization(t *testing.T) {
	if m := Magnetization([]int8{1, 1, 1, 1}); m != 1 {
		t.Fatalf("all-up magnetization %v", m)
	}
	if m := Magnetization([]int8{1, -1, 1, -1}); m != 0 {
		t.Fatalf("balanced magnetization %v", m)
	}
	if m := Magnetization(nil); m != 0 {
		t.Fatalf("empty magnetization %v", m)
	}
}

func BenchmarkEnergyN512(b *testing.B) {
	r := rng.New(1)
	m := randomModel(512, r)
	s := RandomSpins(512, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Energy(s)
	}
}

func BenchmarkLocalFieldsN512(b *testing.B) {
	r := rng.New(1)
	m := randomModel(512, r)
	s := RandomSpins(512, r)
	buf := make([]float64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LocalFields(s, buf)
	}
}

func BenchmarkApplyFlipN512(b *testing.B) {
	r := rng.New(1)
	m := randomModel(512, r)
	s := RandomSpins(512, r)
	f := m.LocalFields(s, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ApplyFlip(s, f, i&511)
	}
}
