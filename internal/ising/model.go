// Package ising implements the Ising model underlying every solver in
// this repository: the Hamiltonian of Eq. 1/2 of the paper, cached
// local fields with O(N) flip updates, the QUBO correspondence, the
// MaxCut correspondence used by the K-graph benchmarks, and the
// bipartition rewrite of Eq. 3 that divide-and-conquer and the
// multiprocessor architecture are built on.
//
// Conventions. Spins are int8 values in {-1, +1}. The coupling matrix J
// is symmetric with zero diagonal and the energy counts each pair once:
//
//	E(σ) = -Σ_{i<j} J_ij σ_i σ_j - μ Σ_i h_i σ_i
//
// The local field of spin i is L_i = Σ_j J_ij σ_j. Flipping spin k
// changes the energy by ΔE_k = 2 σ_k (L_k + μ h_k); a negative ΔE_k is
// an improving flip.
package ising

import (
	"errors"
	"fmt"
	"math"

	"mbrim/internal/lattice"
)

// Model is a dense Ising problem instance: n spins, a symmetric
// coupling matrix with zero diagonal, per-spin biases h and the global
// bias scale μ. The dense representation is deliberate: the paper's
// benchmarks (K-graphs) are fully connected, and the machines under
// study provide all-to-all coupling.
type Model struct {
	n  int
	j  []float64 // row-major n×n, symmetric, zero diagonal
	h  []float64
	mu float64
}

// NewModel returns a model with n spins, zero couplings, zero biases
// and μ = 1. It panics if n <= 0.
func NewModel(n int) *Model {
	if n <= 0 {
		panic(fmt.Sprintf("ising: NewModel with n=%d", n))
	}
	return &Model{
		n:  n,
		j:  make([]float64, n*n),
		h:  make([]float64, n),
		mu: 1,
	}
}

// N returns the number of spins.
func (m *Model) N() int { return m.n }

// Mu returns the global bias scale μ.
func (m *Model) Mu() float64 { return m.mu }

// SetMu sets the global bias scale μ.
func (m *Model) SetMu(mu float64) { m.mu = mu }

// Coupling returns J_ij.
func (m *Model) Coupling(i, j int) float64 { return m.j[i*m.n+j] }

// SetCoupling sets J_ij = J_ji = v. Setting a diagonal element panics:
// the model has no self-coupling (Eq. 1 has zero diagonal).
func (m *Model) SetCoupling(i, j int, v float64) {
	if i == j {
		panic("ising: self-coupling is not part of the model")
	}
	m.j[i*m.n+j] = v
	m.j[j*m.n+i] = v
}

// AddCoupling adds v to J_ij (and J_ji), accumulating parallel edges.
func (m *Model) AddCoupling(i, j int, v float64) {
	if i == j {
		panic("ising: self-coupling is not part of the model")
	}
	m.j[i*m.n+j] += v
	m.j[j*m.n+i] += v
}

// Bias returns h_i.
func (m *Model) Bias(i int) float64 { return m.h[i] }

// SetBias sets h_i.
func (m *Model) SetBias(i int, v float64) { m.h[i] = v }

// Row returns the i-th row of J as a read-only slice (do not mutate).
// Hot solver loops use it to avoid per-element bounds arithmetic.
func (m *Model) Row(i int) []float64 { return m.j[i*m.n : (i+1)*m.n] }

// Biases returns the bias vector as a read-only slice (do not mutate).
func (m *Model) Biases() []float64 { return m.h }

// Couplings returns the full row-major coupling matrix as a read-only
// slice (do not mutate). Backend constructors view it zero-copy.
func (m *Model) Couplings() []float64 { return m.j }

// View returns a coupling-matrix backend over this model's couplings
// (unscaled). Auto resolves by measured density. The view aliases the
// model for the dense layouts — do not mutate couplings while it is in
// use.
func (m *Model) View(kind lattice.Kind) lattice.Coupling {
	return lattice.FromDense(m.n, m.j, kind, 0)
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := &Model{n: m.n, j: make([]float64, len(m.j)), h: make([]float64, len(m.h)), mu: m.mu}
	copy(c.j, m.j)
	copy(c.h, m.h)
	return c
}

// Energy returns E(σ) for the given spin assignment.
func (m *Model) Energy(spins []int8) float64 {
	if len(spins) != m.n {
		panic(fmt.Sprintf("ising: Energy with %d spins on %d-spin model", len(spins), m.n))
	}
	e := 0.0
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		si := float64(spins[i])
		acc := 0.0
		for j := i + 1; j < m.n; j++ {
			acc += row[j] * float64(spins[j])
		}
		e -= si * acc
		e -= m.mu * m.h[i] * si
	}
	return e
}

// LocalFields fills out[i] = L_i = Σ_j J_ij σ_j and returns it. If out
// is nil or too short, a new slice is allocated.
func (m *Model) LocalFields(spins []int8, out []float64) []float64 {
	if len(spins) != m.n {
		panic("ising: LocalFields spin length mismatch")
	}
	if len(out) < m.n {
		out = make([]float64, m.n)
	}
	out = out[:m.n]
	for i := range out {
		out[i] = 0
	}
	// Symmetric accumulation: touch each J_ij once, update both fields.
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		si := float64(spins[i])
		li := out[i]
		for j := i + 1; j < m.n; j++ {
			v := row[j]
			if v == 0 {
				continue
			}
			sj := float64(spins[j])
			li += v * sj
			out[j] += v * si
		}
		out[i] = li
	}
	return out
}

// FlipDelta returns the energy change from flipping spin k given its
// current local field L_k: ΔE = 2 σ_k (L_k + μ h_k).
func (m *Model) FlipDelta(spins []int8, fields []float64, k int) float64 {
	return 2 * float64(spins[k]) * (fields[k] + m.mu*m.h[k])
}

// ApplyFlip flips spin k in place and updates the cached local fields
// of every other spin in O(N). fields[k] itself is unchanged (it does
// not depend on σ_k).
func (m *Model) ApplyFlip(spins []int8, fields []float64, k int) {
	old := float64(spins[k])
	spins[k] = -spins[k]
	d := -2 * old // new - old contribution of σ_k
	row := m.Row(k)
	for j := 0; j < m.n; j++ {
		fields[j] += row[j] * d
	}
}

// EnergyFromFields returns E(σ) computed from cached local fields:
// E = -(1/2) Σ_i L_i σ_i - μ Σ_i h_i σ_i. It is exact when the cache is
// consistent with the spins and costs O(N).
func (m *Model) EnergyFromFields(spins []int8, fields []float64) float64 {
	e := 0.0
	for i := 0; i < m.n; i++ {
		si := float64(spins[i])
		e -= 0.5*fields[i]*si + m.mu*m.h[i]*si
	}
	return e
}

// TotalCouplingWeight returns Σ_{i<j} J_ij, the constant that relates
// energy to cut value for MaxCut-mapped instances.
func (m *Model) TotalCouplingWeight() float64 {
	w := 0.0
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		for j := i + 1; j < m.n; j++ {
			w += row[j]
		}
	}
	return w
}

// MaxAbsCoupling returns max_ij |J_ij|, used by dynamical-system
// solvers to normalize their time constants.
func (m *Model) MaxAbsCoupling() float64 {
	mx := 0.0
	for _, v := range m.j {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// InfinityNorm returns max_i Σ_j |J_ij|, the largest total coupling
// weight incident on any spin. Dynamical-system solvers normalize by
// it so that the combined coupling current into a node is bounded by
// 1 — the resistive-divider bound a physical coupling network obeys.
func (m *Model) InfinityNorm() float64 {
	mx := 0.0
	for i := 0; i < m.n; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// MaxRowNorm2 returns max_i √(Σ_j J_ij²). For spins in random states
// the local field of spin i is approximately Normal(0, ‖J_i‖₂), so
// dividing the couplings by this norm puts typical local fields at
// unit scale — the operating point where a dynamical machine's
// bistable feedback (O(1) gains) meaningfully competes with the
// coupling network instead of being drowned out or dominating.
func (m *Model) MaxRowNorm2() float64 {
	mx := 0.0
	for i := 0; i < m.n; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			s += v * v
		}
		if s > mx {
			mx = s
		}
	}
	return math.Sqrt(mx)
}

// Degree returns the number of nonzero couplings of spin i.
func (m *Model) Degree(i int) int {
	d := 0
	for _, v := range m.Row(i) {
		if v != 0 {
			d++
		}
	}
	return d
}

// Validate checks the structural invariants (symmetry, zero diagonal,
// finite entries) and returns an error describing the first violation.
func (m *Model) Validate() error {
	if len(m.j) != m.n*m.n || len(m.h) != m.n {
		return errors.New("ising: inconsistent buffer sizes")
	}
	for i := 0; i < m.n; i++ {
		if m.j[i*m.n+i] != 0 {
			return fmt.Errorf("ising: nonzero diagonal at %d", i)
		}
		for j := i + 1; j < m.n; j++ {
			a, b := m.j[i*m.n+j], m.j[j*m.n+i]
			if a != b {
				return fmt.Errorf("ising: asymmetry at (%d,%d): %v vs %v", i, j, a, b)
			}
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("ising: non-finite coupling at (%d,%d)", i, j)
			}
		}
	}
	for i, v := range m.h {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("ising: non-finite bias at %d", i)
		}
	}
	return nil
}
