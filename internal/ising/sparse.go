package ising

import (
	"fmt"
	"math"

	"mbrim/internal/lattice"
)

// Problem is the solver-facing surface shared by the dense Model and
// SparseModel: everything a local-move solver needs. Dense models are
// right for the paper's fully connected K-graphs; sparse models make
// Gset-scale instances (tens of thousands of spins, ~1% density)
// tractable, with O(degree) flip updates instead of O(N).
type Problem interface {
	N() int
	Energy(spins []int8) float64
	LocalFields(spins []int8, out []float64) []float64
	FlipDelta(spins []int8, fields []float64, k int) float64
	ApplyFlip(spins []int8, fields []float64, k int)
	EnergyFromFields(spins []int8, fields []float64) float64
}

// Both models satisfy Problem.
var (
	_ Problem = (*Model)(nil)
	_ Problem = (*SparseModel)(nil)
)

// SparseModel is an immutable CSR representation of an Ising problem.
// Build one with NewSparse from coordinate entries, or Sparsify an
// existing dense model. Energy conventions match Model exactly.
type SparseModel struct {
	n        int
	rowStart []int // len n+1
	cols     []int
	vals     []float64
	h        []float64
	mu       float64
}

// SparseEntry is one coupling for NewSparse, i < j.
type SparseEntry struct {
	I, J int
	V    float64
}

// NewSparse builds a sparse model from coupling entries and optional
// biases (nil means all-zero). Duplicate (i, j) entries accumulate.
func NewSparse(n int, entries []SparseEntry, biases []float64) *SparseModel {
	if n <= 0 {
		panic(fmt.Sprintf("ising: NewSparse with n=%d", n))
	}
	if biases != nil && len(biases) != n {
		panic("ising: NewSparse bias length mismatch")
	}
	// Accumulate into per-row maps first (construction is cold path).
	rows := make([]map[int]float64, n)
	add := func(i, j int, v float64) {
		if rows[i] == nil {
			rows[i] = make(map[int]float64)
		}
		rows[i][j] += v
	}
	for _, e := range entries {
		if e.I == e.J {
			panic("ising: NewSparse self-coupling")
		}
		if e.I < 0 || e.J < 0 || e.I >= n || e.J >= n {
			panic(fmt.Sprintf("ising: NewSparse entry (%d,%d) out of range", e.I, e.J))
		}
		if math.IsNaN(e.V) || math.IsInf(e.V, 0) {
			panic("ising: NewSparse non-finite coupling")
		}
		add(e.I, e.J, e.V)
		add(e.J, e.I, e.V)
	}
	sm := &SparseModel{
		n:        n,
		rowStart: make([]int, n+1),
		h:        make([]float64, n),
		mu:       1,
	}
	if biases != nil {
		copy(sm.h, biases)
	}
	nnz := 0
	for i := range rows {
		nnz += len(rows[i])
	}
	sm.cols = make([]int, 0, nnz)
	sm.vals = make([]float64, 0, nnz)
	for i := 0; i < n; i++ {
		sm.rowStart[i] = len(sm.cols)
		// Ascending column order for reproducibility.
		row := rows[i]
		for j := 0; j < n; j++ {
			if v, ok := row[j]; ok && v != 0 {
				sm.cols = append(sm.cols, j)
				sm.vals = append(sm.vals, v)
			}
		}
	}
	sm.rowStart[n] = len(sm.cols)
	return sm
}

// Sparsify converts a dense model, keeping only nonzero couplings.
func Sparsify(m *Model) *SparseModel {
	var entries []SparseEntry
	for i := 0; i < m.N(); i++ {
		row := m.Row(i)
		for j := i + 1; j < m.N(); j++ {
			if row[j] != 0 {
				entries = append(entries, SparseEntry{I: i, J: j, V: row[j]})
			}
		}
	}
	biases := make([]float64, m.N())
	for i := range biases {
		biases[i] = m.Bias(i)
	}
	sm := NewSparse(m.N(), entries, biases)
	sm.mu = m.Mu()
	return sm
}

// Densify converts back to a dense model.
func (sm *SparseModel) Densify() *Model {
	m := NewModel(sm.n)
	m.SetMu(sm.mu)
	for i := 0; i < sm.n; i++ {
		m.SetBias(i, sm.h[i])
		for k := sm.rowStart[i]; k < sm.rowStart[i+1]; k++ {
			if j := sm.cols[k]; j > i {
				m.SetCoupling(i, j, sm.vals[k])
			}
		}
	}
	return m
}

// CSR exposes the raw compressed-sparse-row triple (rowStart of length
// n+1, ascending columns per row) as read-only slices. Backend
// constructors view it zero-copy.
func (sm *SparseModel) CSR() (rowStart, cols []int, vals []float64) {
	return sm.rowStart, sm.cols, sm.vals
}

// View returns a CSR coupling backend aliasing this model's storage.
func (sm *SparseModel) View() lattice.Coupling {
	return lattice.FromCSR(sm.n, sm.rowStart, sm.cols, sm.vals, 0)
}

// N returns the spin count.
func (sm *SparseModel) N() int { return sm.n }

// Mu returns the global bias scale.
func (sm *SparseModel) Mu() float64 { return sm.mu }

// NNZ returns the number of stored directed couplings (2× the edge
// count).
func (sm *SparseModel) NNZ() int { return len(sm.cols) }

// Bias returns h_i.
func (sm *SparseModel) Bias(i int) float64 { return sm.h[i] }

// Degree returns the number of neighbours of spin i.
func (sm *SparseModel) Degree(i int) int { return sm.rowStart[i+1] - sm.rowStart[i] }

// Energy returns E(σ) with the same convention as Model.
func (sm *SparseModel) Energy(spins []int8) float64 {
	if len(spins) != sm.n {
		panic("ising: sparse Energy length mismatch")
	}
	e := 0.0
	for i := 0; i < sm.n; i++ {
		si := float64(spins[i])
		acc := 0.0
		for k := sm.rowStart[i]; k < sm.rowStart[i+1]; k++ {
			if j := sm.cols[k]; j > i {
				acc += sm.vals[k] * float64(spins[j])
			}
		}
		e -= si*acc + sm.mu*sm.h[i]*si
	}
	return e
}

// LocalFields fills out[i] = Σ_j J_ij σ_j.
func (sm *SparseModel) LocalFields(spins []int8, out []float64) []float64 {
	if len(spins) != sm.n {
		panic("ising: sparse LocalFields length mismatch")
	}
	if len(out) < sm.n {
		out = make([]float64, sm.n)
	}
	out = out[:sm.n]
	for i := range out {
		acc := 0.0
		for k := sm.rowStart[i]; k < sm.rowStart[i+1]; k++ {
			acc += sm.vals[k] * float64(spins[sm.cols[k]])
		}
		out[i] = acc
	}
	return out
}

// FlipDelta returns the energy change of flipping spin k, given the
// cached fields: 2σ_k(L_k + μh_k).
func (sm *SparseModel) FlipDelta(spins []int8, fields []float64, k int) float64 {
	return 2 * float64(spins[k]) * (fields[k] + sm.mu*sm.h[k])
}

// ApplyFlip flips spin k and updates neighbours' fields in O(deg k).
func (sm *SparseModel) ApplyFlip(spins []int8, fields []float64, k int) {
	old := float64(spins[k])
	spins[k] = -spins[k]
	d := -2 * old
	for idx := sm.rowStart[k]; idx < sm.rowStart[k+1]; idx++ {
		fields[sm.cols[idx]] += sm.vals[idx] * d
	}
}

// EnergyFromFields returns E from consistent cached fields in O(N).
func (sm *SparseModel) EnergyFromFields(spins []int8, fields []float64) float64 {
	e := 0.0
	for i := 0; i < sm.n; i++ {
		si := float64(spins[i])
		e -= 0.5*fields[i]*si + sm.mu*sm.h[i]*si
	}
	return e
}
