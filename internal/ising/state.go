package ising

import (
	"fmt"

	"mbrim/internal/rng"
)

// RandomSpins returns n spins drawn uniformly from {-1, +1}.
func RandomSpins(n int, r *rng.Source) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = r.Spin()
	}
	return s
}

// CopySpins returns an independent copy of s.
func CopySpins(s []int8) []int8 {
	c := make([]int8, len(s))
	copy(c, s)
	return c
}

// ValidSpins reports whether every value is -1 or +1.
func ValidSpins(s []int8) bool {
	for _, v := range s {
		if v != -1 && v != 1 {
			return false
		}
	}
	return true
}

// HammingDistance returns the number of positions where a and b differ.
// It is the "bit change" count of the paper's batch-mode accounting:
// the data a chip must broadcast at an epoch boundary.
func HammingDistance(a, b []int8) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ising: HammingDistance on lengths %d and %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// PackSpins encodes spins as a bitmap (+1 → 1, -1 → 0), the wire format
// for state exchange: N spins cost ⌈N/8⌉ bytes, which is what the
// fabric model charges for a full-state broadcast.
func PackSpins(s []int8) []byte {
	out := make([]byte, (len(s)+7)/8)
	for i, v := range s {
		if v > 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// UnpackSpins decodes a bitmap produced by PackSpins into n spins.
func UnpackSpins(b []byte, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		if b[i/8]&(1<<(i%8)) != 0 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// Magnetization returns (Σ σ_i)/N in [-1, 1].
func Magnetization(s []int8) float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0
	for _, v := range s {
		sum += int(v)
	}
	return float64(sum) / float64(len(s))
}
