package ising

import "fmt"

// QUBO is a quadratic unconstrained binary optimization instance:
// minimize x^T Q x over x ∈ {0,1}^n. Q is stored dense; only the value
// Q_ij + Q_ji matters for i≠j and the diagonal carries linear terms,
// the usual convention. The paper notes (Sec 2.1) that a QUBO maps to
// Ising by the substitution σ_i = 2 b_i − 1; ToIsing implements exactly
// that, with Offset carrying the constant so objective values agree.
type QUBO struct {
	n int
	q []float64 // row-major n×n
}

// NewQUBO returns an n-variable QUBO with all-zero coefficients.
func NewQUBO(n int) *QUBO {
	if n <= 0 {
		panic(fmt.Sprintf("ising: NewQUBO with n=%d", n))
	}
	return &QUBO{n: n, q: make([]float64, n*n)}
}

// N returns the number of binary variables.
func (q *QUBO) N() int { return q.n }

// Coeff returns Q_ij.
func (q *QUBO) Coeff(i, j int) float64 { return q.q[i*q.n+j] }

// SetCoeff sets Q_ij = v (not symmetrized; i==j sets a linear term).
func (q *QUBO) SetCoeff(i, j int, v float64) { q.q[i*q.n+j] = v }

// AddCoeff adds v to Q_ij.
func (q *QUBO) AddCoeff(i, j int, v float64) { q.q[i*q.n+j] += v }

// Value returns x^T Q x for the given assignment.
func (q *QUBO) Value(x []bool) float64 {
	if len(x) != q.n {
		panic("ising: QUBO Value with wrong assignment length")
	}
	v := 0.0
	for i := 0; i < q.n; i++ {
		if !x[i] {
			continue
		}
		row := q.q[i*q.n : (i+1)*q.n]
		for j := 0; j < q.n; j++ {
			if x[j] {
				v += row[j]
			}
		}
	}
	return v
}

// ToIsing converts the QUBO to an Ising model and the constant offset
// such that for any assignment, Value(x) = model.Energy(σ) + offset
// with σ_i = 2 x_i − 1.
func (q *QUBO) ToIsing() (m *Model, offset float64) {
	m = NewModel(q.n)
	offset = 0
	h := make([]float64, q.n)
	for i := 0; i < q.n; i++ {
		ci := q.Coeff(i, i)
		offset += ci / 2
		h[i] -= ci / 2
		for j := i + 1; j < q.n; j++ {
			// Only the pair weight Q_ij + Q_ji is observable in x^T Q x.
			pair := q.Coeff(i, j) + q.Coeff(j, i)
			if pair == 0 {
				continue
			}
			offset += pair / 4
			h[i] -= pair / 4
			h[j] -= pair / 4
			m.SetCoupling(i, j, -pair/4)
		}
	}
	for i, v := range h {
		m.SetBias(i, v)
	}
	return m, offset
}

// SpinsToBits maps σ ∈ {-1,+1}^n to x ∈ {0,1}^n via x = (σ+1)/2.
func SpinsToBits(s []int8) []bool {
	x := make([]bool, len(s))
	for i, v := range s {
		x[i] = v > 0
	}
	return x
}

// BitsToSpins maps x ∈ {0,1}^n to σ ∈ {-1,+1}^n via σ = 2x − 1.
func BitsToSpins(x []bool) []int8 {
	s := make([]int8, len(x))
	for i, v := range x {
		if v {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// FromIsing converts an Ising model into an equivalent QUBO with
// offset such that model.Energy(σ) = qubo.Value(x) + offset under
// x = (σ+1)/2. It is the inverse direction of ToIsing.
func FromIsing(m *Model) (q *QUBO, offset float64) {
	// E(σ) = -Σ_{i<j} J σσ - μ Σ h σ with σ = 2x-1:
	//   -J σiσj = -4J xixj + 2J xi + 2J xj - J
	//   -μh σi  = -2μh xi + μh
	q = NewQUBO(m.N())
	offset = 0
	n := m.N()
	for i := 0; i < n; i++ {
		q.AddCoeff(i, i, -2*m.Mu()*m.Bias(i))
		offset += m.Mu() * m.Bias(i)
		row := m.Row(i)
		for j := i + 1; j < n; j++ {
			jij := row[j]
			if jij == 0 {
				continue
			}
			q.AddCoeff(i, j, -4*jij)
			q.AddCoeff(i, i, 2*jij)
			q.AddCoeff(j, j, 2*jij)
			offset -= jij
		}
	}
	return q, offset
}
