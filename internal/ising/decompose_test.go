package ising

import (
	"math"
	"testing"
	"testing/quick"

	"mbrim/internal/lattice"
	"mbrim/internal/rng"
)

func TestEq3EnergyIdentity(t *testing.T) {
	// The central identity of Sec 3.2: for any bipartition and any
	// state, E = E_u + E_l − E_× exactly.
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(30)
		m := randomModel(n, r)
		s := RandomSpins(n, r)
		k := 1 + r.Intn(n-1)
		perm := r.Perm(n)
		upper := perm[:k]
		lower := Complement(n, upper)

		spUpper := Extract(m, upper, s)
		spLower := Extract(m, lower, s)
		eu := spUpper.Model.Energy(spUpper.Gather(s))
		el := spLower.Model.Energy(spLower.Gather(s))
		ex := CrossEnergy(m, upper, s)
		return math.Abs(m.Energy(s)-(eu+el-ex)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubProblemMinimizesGlobal(t *testing.T) {
	// Minimizing the sub-problem with the complement frozen minimizes
	// the global energy: E_total − E_u is constant in σ_u.
	r := rng.New(11)
	n := 10
	m := randomModel(n, r)
	s := RandomSpins(n, r)
	upper := []int{0, 2, 4, 6}
	sp := Extract(m, upper, s)

	work := CopySpins(s)
	var diffs []float64
	for mask := 0; mask < 1<<len(upper); mask++ {
		local := make([]int8, len(upper))
		for i := range local {
			if mask&(1<<i) != 0 {
				local[i] = 1
			} else {
				local[i] = -1
			}
		}
		sp.Project(local, work)
		diffs = append(diffs, m.Energy(work)-sp.Model.Energy(local))
	}
	for _, d := range diffs[1:] {
		if math.Abs(d-diffs[0]) > 1e-6 {
			t.Fatalf("E_total − E_u is not constant in σ_u: %v vs %v", d, diffs[0])
		}
	}
}

func TestExtractEffectiveBias(t *testing.T) {
	// g_u = μ h_u + J_× σ_l, element by element.
	r := rng.New(12)
	n := 9
	m := randomModel(n, r)
	m.SetMu(2)
	s := RandomSpins(n, r)
	upper := []int{1, 3, 8}
	sp := Extract(m, upper, s)
	lower := Complement(n, upper)
	for local, g := range upper {
		want := m.Mu() * m.Bias(g)
		for _, l := range lower {
			want += m.Coupling(g, l) * float64(s[l])
		}
		if math.Abs(sp.Model.Bias(local)-want) > 1e-9 {
			t.Fatalf("g[%d]: got %v want %v", local, sp.Model.Bias(local), want)
		}
	}
	if sp.Model.Mu() != 1 {
		t.Fatal("sub-problem must carry μ=1 (bias already scaled)")
	}
}

func TestExtractKeepsInternalCouplings(t *testing.T) {
	r := rng.New(13)
	m := randomModel(8, r)
	s := RandomSpins(8, r)
	upper := []int{2, 5, 7}
	sp := Extract(m, upper, s)
	for a := 0; a < len(upper); a++ {
		for b := a + 1; b < len(upper); b++ {
			if sp.Model.Coupling(a, b) != m.Coupling(upper[a], upper[b]) {
				t.Fatalf("internal coupling (%d,%d) not preserved", a, b)
			}
		}
	}
}

func TestGlueOpsCount(t *testing.T) {
	// Dense model: every (sub, complement) pair with a nonzero coupling
	// costs one glue op. randomModel may have zeros (weight 0 occurs),
	// so compare against an explicit count.
	r := rng.New(14)
	n := 20
	m := randomModel(n, r)
	s := RandomSpins(n, r)
	upper := r.Perm(n)[:8]
	sp := Extract(m, upper, s)
	lower := Complement(n, upper)
	var want int64
	for _, u := range upper {
		for _, l := range lower {
			if m.Coupling(u, l) != 0 {
				want++
			}
		}
	}
	if sp.GlueOps != want {
		t.Fatalf("GlueOps = %d, want %d", sp.GlueOps, want)
	}
}

func TestProjectGatherRoundTrip(t *testing.T) {
	r := rng.New(15)
	m := randomModel(12, r)
	s := RandomSpins(12, r)
	sub := []int{0, 4, 9, 11}
	sp := Extract(m, sub, s)
	local := sp.Gather(s)
	for i := range local {
		local[i] = -local[i]
	}
	sp.Project(local, s)
	back := sp.Gather(s)
	for i := range back {
		if back[i] != local[i] {
			t.Fatal("Project/Gather round trip mismatch")
		}
	}
}

func TestExtractPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Extract with duplicate indices did not panic")
		}
	}()
	m := NewModel(4)
	Extract(m, []int{1, 1}, make([]int8, 4))
}

func TestExtractPanicsOnRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Extract with out-of-range index did not panic")
		}
	}()
	m := NewModel(4)
	Extract(m, []int{5}, make([]int8, 4))
}

func TestComplement(t *testing.T) {
	got := Complement(6, []int{1, 4})
	want := []int{0, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Complement length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Complement = %v, want %v", got, want)
		}
	}
}

func TestWholeProblemExtract(t *testing.T) {
	// Extracting all indices reproduces the original problem exactly
	// (no glue, same energies).
	r := rng.New(16)
	n := 10
	m := randomModel(n, r)
	s := RandomSpins(n, r)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	sp := Extract(m, all, s)
	if sp.GlueOps != 0 {
		t.Fatalf("whole-problem extract has %d glue ops", sp.GlueOps)
	}
	if math.Abs(sp.Model.Energy(s)-m.Energy(s)) > 1e-9 {
		t.Fatal("whole-problem extract changed the energy")
	}
}

func TestExtractFromBackendsAgree(t *testing.T) {
	// The regression pinned by the lattice refactor: routing the glue
	// scan through any backend's sparse row iterator must reproduce the
	// dense Extract exactly — same sub-model, same effective biases,
	// and the same GlueOps ledger (the dense path always skipped zero
	// couplings, so only nonzero cross terms ever counted).
	r := rng.New(15)
	for _, density := range []float64{1.0, 0.2} {
		n := 24
		m := NewModel(n)
		m.SetMu(1.5)
		for i := 0; i < n; i++ {
			m.SetBias(i, r.Float64()-0.5)
			for j := i + 1; j < n; j++ {
				if r.Float64() < density {
					m.SetCoupling(i, j, float64(r.Spin()))
				}
			}
		}
		s := RandomSpins(n, r)
		sub := r.Perm(n)[:9]
		ref := Extract(m, sub, s)
		for _, kind := range []lattice.Kind{lattice.Dense, lattice.CSR, lattice.Blocked} {
			sp := ExtractFrom(m.View(kind), m, sub, s)
			if sp.GlueOps != ref.GlueOps {
				t.Errorf("density %v, %v: GlueOps = %d, dense Extract %d",
					density, kind, sp.GlueOps, ref.GlueOps)
			}
			for a := 0; a < len(sub); a++ {
				if sp.Model.Bias(a) != ref.Model.Bias(a) {
					t.Fatalf("density %v, %v: bias[%d] = %v, want %v",
						density, kind, a, sp.Model.Bias(a), ref.Model.Bias(a))
				}
				for b := a + 1; b < len(sub); b++ {
					if sp.Model.Coupling(a, b) != ref.Model.Coupling(a, b) {
						t.Fatalf("density %v, %v: coupling (%d,%d) differs", density, kind, a, b)
					}
				}
			}
		}
		// The sparse view of a Sparsified parent agrees too.
		sv := Sparsify(m).View()
		sp := ExtractFrom(sv, m, sub, s)
		if sp.GlueOps != ref.GlueOps {
			t.Errorf("density %v, sparse-model view: GlueOps = %d, want %d",
				density, sp.GlueOps, ref.GlueOps)
		}
	}
}
