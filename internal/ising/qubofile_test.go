package ising

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mbrim/internal/rng"
)

func TestQUBOFileRoundTrip(t *testing.T) {
	r := rng.New(1)
	q := randomQUBO(12, r)
	var buf bytes.Buffer
	if err := WriteQUBO(&buf, q); err != nil {
		t.Fatal(err)
	}
	back, err := ReadQUBO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != q.N() {
		t.Fatalf("size changed: %d vs %d", back.N(), q.N())
	}
	// The format folds Q_ij + Q_ji into one entry; only the objective
	// is preserved, so compare values on random assignments.
	for trial := 0; trial < 20; trial++ {
		x := randomBits(12, r)
		if math.Abs(q.Value(x)-back.Value(x)) > 1e-9 {
			t.Fatalf("objective changed after round trip")
		}
	}
}

func TestQUBOFileFormat(t *testing.T) {
	q := NewQUBO(3)
	q.SetCoeff(0, 0, -1)
	q.SetCoeff(0, 2, 2)
	var buf bytes.Buffer
	if err := WriteQUBO(&buf, q); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p qubo 0 3 1 1") {
		t.Fatalf("problem line wrong:\n%s", out)
	}
	if !strings.Contains(out, "0 0 -1") || !strings.Contains(out, "0 2 2") {
		t.Fatalf("entries missing:\n%s", out)
	}
}

func TestReadQUBOAcceptsComments(t *testing.T) {
	in := "c a comment\n\np qubo 0 2 1 1\n0 0 -3\n0 1 2\n"
	q, err := ReadQUBO(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if q.Coeff(0, 0) != -3 || q.Coeff(0, 1) != 2 {
		t.Fatal("coefficients wrong")
	}
}

func TestReadQUBONormalizesEntryOrder(t *testing.T) {
	// j < i entries are legal and fold to the upper triangle.
	in := "p qubo 0 2 0 1\n1 0 5\n"
	q, err := ReadQUBO(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if q.Coeff(0, 1) != 5 {
		t.Fatalf("coefficient %v, want 5 at (0,1)", q.Coeff(0, 1))
	}
}

func TestReadQUBORejects(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"no problem line": "0 0 1\n",
		"double problem":  "p qubo 0 2 0 0\np qubo 0 2 0 0\n",
		"bad counts":      "p qubo 0 2 5 5\n0 0 1\n",
		"out of range":    "p qubo 0 2 1 0\n5 5 1\n",
		"bad number":      "p qubo 0 2 1 0\n0 0 xyz\n",
		"zero nodes":      "p qubo 0 0 0 0\n",
		"short p line":    "p qubo 0 2\n",
	}
	for name, in := range cases {
		if _, err := ReadQUBO(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadQUBO accepted %s", name)
		}
	}
}

func TestQUBOFileThenIsing(t *testing.T) {
	// End-to-end: file → QUBO → Ising preserves the objective.
	in := "p qubo 0 3 2 1\n0 0 -2\n1 1 -2\n0 1 3\n"
	q, err := ReadQUBO(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m, offset := q.ToIsing()
	for mask := 0; mask < 8; mask++ {
		x := make([]bool, 3)
		for i := range x {
			x[i] = mask&(1<<i) != 0
		}
		if math.Abs(q.Value(x)-(m.Energy(BitsToSpins(x))+offset)) > 1e-9 {
			t.Fatal("file-loaded QUBO broke the Ising identity")
		}
	}
}
