package ising

import (
	"math"
	"testing"
	"testing/quick"

	"mbrim/internal/rng"
)

// randomModel builds a dense model with integer couplings in [-3,3]
// and biases in [-2,2], the regime the benchmarks live in.
func randomModel(n int, r *rng.Source) *Model {
	m := NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, float64(r.Intn(7)-3))
		}
		m.SetBias(i, float64(r.Intn(5)-2))
	}
	return m
}

// naiveEnergy is the textbook O(N^2) reference implementation.
func naiveEnergy(m *Model, s []int8) float64 {
	e := 0.0
	for i := 0; i < m.N(); i++ {
		for j := i + 1; j < m.N(); j++ {
			e -= m.Coupling(i, j) * float64(s[i]) * float64(s[j])
		}
		e -= m.Mu() * m.Bias(i) * float64(s[i])
	}
	return e
}

func TestNewModelPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewModel(0) did not panic")
		}
	}()
	NewModel(0)
}

func TestSetCouplingSymmetric(t *testing.T) {
	m := NewModel(4)
	m.SetCoupling(1, 3, -2.5)
	if m.Coupling(3, 1) != -2.5 || m.Coupling(1, 3) != -2.5 {
		t.Fatal("SetCoupling is not symmetric")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfCouplingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetCoupling(i,i) did not panic")
		}
	}()
	NewModel(3).SetCoupling(1, 1, 1)
}

func TestEnergyMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		m := randomModel(n, r)
		s := RandomSpins(n, r)
		got := m.Energy(s)
		want := naiveEnergy(m, s)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: Energy=%v naive=%v", n, got, want)
		}
	}
}

func TestEnergyFromFieldsMatchesEnergy(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		m := randomModel(n, r)
		s := RandomSpins(n, r)
		f := m.LocalFields(s, nil)
		if d := math.Abs(m.EnergyFromFields(s, f) - m.Energy(s)); d > 1e-9 {
			t.Fatalf("n=%d: EnergyFromFields differs by %v", n, d)
		}
	}
}

func TestLocalFieldsDefinition(t *testing.T) {
	r := rng.New(3)
	n := 17
	m := randomModel(n, r)
	s := RandomSpins(n, r)
	f := m.LocalFields(s, nil)
	for i := 0; i < n; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += m.Coupling(i, j) * float64(s[j])
		}
		if math.Abs(f[i]-want) > 1e-9 {
			t.Fatalf("field %d: got %v want %v", i, f[i], want)
		}
	}
}

func TestLocalFieldsReusesBuffer(t *testing.T) {
	r := rng.New(4)
	m := randomModel(8, r)
	s := RandomSpins(8, r)
	buf := make([]float64, 8)
	out := m.LocalFields(s, buf)
	if &out[0] != &buf[0] {
		t.Fatal("LocalFields allocated despite adequate buffer")
	}
}

func TestFlipDeltaMatchesRecompute(t *testing.T) {
	// Invariant from DESIGN.md: ΔE from the cached local field equals
	// the full energy recomputation, for any flip.
	r := rng.New(5)
	f := func(seed uint32, flips uint8) bool {
		rr := rng.New(uint64(seed))
		n := 3 + rr.Intn(30)
		m := randomModel(n, rr)
		s := RandomSpins(n, rr)
		fields := m.LocalFields(s, nil)
		e := m.Energy(s)
		for step := 0; step < int(flips%40)+1; step++ {
			k := rr.Intn(n)
			delta := m.FlipDelta(s, fields, k)
			m.ApplyFlip(s, fields, k)
			e += delta
			if math.Abs(e-m.Energy(s)) > 1e-6 {
				return false
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyFlipUpdatesFieldsConsistently(t *testing.T) {
	r := rng.New(6)
	n := 25
	m := randomModel(n, r)
	s := RandomSpins(n, r)
	fields := m.LocalFields(s, nil)
	for step := 0; step < 200; step++ {
		k := r.Intn(n)
		m.ApplyFlip(s, fields, k)
	}
	fresh := m.LocalFields(s, nil)
	for i := range fresh {
		if math.Abs(fresh[i]-fields[i]) > 1e-6 {
			t.Fatalf("field %d drifted: cached %v fresh %v", i, fields[i], fresh[i])
		}
	}
}

func TestImprovingFlipLowersEnergy(t *testing.T) {
	// The "wrong spin" criterion of Eq. 4: σ_k (Σ J σ) < 0 with zero
	// bias means flipping k improves energy.
	r := rng.New(7)
	n := 20
	m := randomModel(n, r)
	for i := 0; i < n; i++ {
		m.SetBias(i, 0)
	}
	s := RandomSpins(n, r)
	fields := m.LocalFields(s, nil)
	for k := 0; k < n; k++ {
		wrong := float64(s[k])*fields[k] < 0
		delta := m.FlipDelta(s, fields, k)
		if wrong && delta >= 0 {
			t.Fatalf("spin %d is wrong by Eq. 4 but flip delta is %v", k, delta)
		}
		if !wrong && delta < 0 {
			t.Fatalf("spin %d is right by Eq. 4 but flip delta is %v", k, delta)
		}
	}
}

func TestBiasAsExtraSpinEquivalence(t *testing.T) {
	// Footnote 4 of the paper: the bias term μ h_i σ_i can be folded
	// into a coupling J_{i,n+1} to an extra spin fixed at +1.
	r := rng.New(8)
	n := 12
	m := randomModel(n, r)
	ext := NewModel(n + 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ext.SetCoupling(i, j, m.Coupling(i, j))
		}
		ext.SetCoupling(i, n, m.Mu()*m.Bias(i))
	}
	for trial := 0; trial < 10; trial++ {
		s := RandomSpins(n, r)
		se := append(CopySpins(s), 1)
		if d := math.Abs(m.Energy(s) - ext.Energy(se)); d > 1e-9 {
			t.Fatalf("extra-spin folding broke energy by %v", d)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewModel(3)
	m.SetCoupling(0, 1, 2)
	m.SetBias(2, 5)
	m.SetMu(0.5)
	c := m.Clone()
	m.SetCoupling(0, 1, -9)
	m.SetBias(2, -9)
	if c.Coupling(0, 1) != 2 || c.Bias(2) != 5 || c.Mu() != 0.5 {
		t.Fatal("Clone shares state with original")
	}
}

func TestTotalCouplingWeight(t *testing.T) {
	m := NewModel(3)
	m.SetCoupling(0, 1, 1)
	m.SetCoupling(0, 2, -2)
	m.SetCoupling(1, 2, 4)
	if w := m.TotalCouplingWeight(); w != 3 {
		t.Fatalf("TotalCouplingWeight = %v, want 3", w)
	}
}

func TestMaxAbsCouplingAndDegree(t *testing.T) {
	m := NewModel(4)
	m.SetCoupling(0, 1, -3)
	m.SetCoupling(2, 3, 2)
	if m.MaxAbsCoupling() != 3 {
		t.Fatalf("MaxAbsCoupling = %v", m.MaxAbsCoupling())
	}
	if m.Degree(0) != 1 || m.Degree(3) != 1 {
		t.Fatal("Degree wrong")
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	m := NewModel(3)
	m.j[0*3+1] = 1 // corrupt directly, bypassing SetCoupling
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted an asymmetric matrix")
	}
}

func TestValidateCatchesNaN(t *testing.T) {
	m := NewModel(3)
	m.SetCoupling(0, 1, math.NaN())
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted NaN coupling")
	}
}

func TestEnergyPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Energy with short spins did not panic")
		}
	}()
	NewModel(4).Energy(make([]int8, 3))
}

func TestAddCouplingAccumulates(t *testing.T) {
	m := NewModel(3)
	m.AddCoupling(0, 1, 1.5)
	m.AddCoupling(1, 0, 1.5)
	if m.Coupling(0, 1) != 3 {
		t.Fatalf("AddCoupling total = %v, want 3", m.Coupling(0, 1))
	}
}
