package ising

import (
	"math"
	"testing"
	"testing/quick"

	"mbrim/internal/rng"
)

func randomSparseEntries(n int, density float64, r *rng.Source) []SparseEntry {
	var entries []SparseEntry
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(density) {
				entries = append(entries, SparseEntry{I: i, J: j, V: float64(r.Intn(7) - 3)})
			}
		}
	}
	return entries
}

func TestSparseDenseEnergyEquivalence(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(30)
		dense := randomModel(n, r)
		sparse := Sparsify(dense)
		for trial := 0; trial < 5; trial++ {
			s := RandomSpins(n, r)
			if math.Abs(dense.Energy(s)-sparse.Energy(s)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseDenseFieldsEquivalence(t *testing.T) {
	r := rng.New(1)
	dense := randomModel(25, r)
	sparse := Sparsify(dense)
	s := RandomSpins(25, r)
	df := dense.LocalFields(s, nil)
	sf := sparse.LocalFields(s, nil)
	for i := range df {
		if math.Abs(df[i]-sf[i]) > 1e-9 {
			t.Fatalf("field %d: dense %v sparse %v", i, df[i], sf[i])
		}
	}
}

func TestSparseFlipSequenceMatchesDense(t *testing.T) {
	// The same flip sequence must produce identical fields and
	// energies on both representations.
	f := func(seed uint32, flips uint8) bool {
		r := rng.New(uint64(seed))
		n := 3 + r.Intn(20)
		dense := randomModel(n, r)
		sparse := Sparsify(dense)
		sD := RandomSpins(n, r)
		sS := CopySpins(sD)
		fD := dense.LocalFields(sD, nil)
		fS := sparse.LocalFields(sS, nil)
		for step := 0; step < int(flips%30)+1; step++ {
			k := r.Intn(n)
			dD := dense.FlipDelta(sD, fD, k)
			dS := sparse.FlipDelta(sS, fS, k)
			if math.Abs(dD-dS) > 1e-9 {
				return false
			}
			dense.ApplyFlip(sD, fD, k)
			sparse.ApplyFlip(sS, fS, k)
		}
		return HammingDistance(sD, sS) == 0 &&
			math.Abs(dense.EnergyFromFields(sD, fD)-sparse.EnergyFromFields(sS, fS)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSparsifyDensifyRoundTrip(t *testing.T) {
	r := rng.New(2)
	dense := randomModel(15, r)
	dense.SetMu(0.5)
	back := Sparsify(dense).Densify()
	if back.Mu() != 0.5 {
		t.Fatal("Mu lost in round trip")
	}
	for i := 0; i < 15; i++ {
		if back.Bias(i) != dense.Bias(i) {
			t.Fatalf("bias %d changed", i)
		}
		for j := 0; j < 15; j++ {
			if i != j && back.Coupling(i, j) != dense.Coupling(i, j) {
				t.Fatalf("coupling (%d,%d) changed", i, j)
			}
		}
	}
}

func TestNewSparseAccumulatesDuplicates(t *testing.T) {
	sm := NewSparse(3, []SparseEntry{{0, 1, 1}, {1, 0, 2}}, nil)
	if sm.NNZ() != 2 { // one undirected edge stored twice
		t.Fatalf("NNZ = %d, want 2", sm.NNZ())
	}
	m := sm.Densify()
	if m.Coupling(0, 1) != 3 {
		t.Fatalf("accumulated coupling %v, want 3", m.Coupling(0, 1))
	}
}

func TestNewSparseDropsZeros(t *testing.T) {
	sm := NewSparse(3, []SparseEntry{{0, 1, 1}, {0, 1, -1}, {1, 2, 2}}, nil)
	if sm.NNZ() != 2 {
		t.Fatalf("cancelled coupling retained: NNZ = %d", sm.NNZ())
	}
	if sm.Degree(0) != 0 || sm.Degree(1) != 1 || sm.Degree(2) != 1 {
		t.Fatal("degrees wrong after cancellation")
	}
}

func TestSparseBiases(t *testing.T) {
	sm := NewSparse(2, []SparseEntry{{0, 1, 1}}, []float64{2, -1})
	s := []int8{1, 1}
	// E = −J σσ − (h0σ0 + h1σ1) = −1 − (2 − 1) = −2.
	if e := sm.Energy(s); e != -2 {
		t.Fatalf("energy %v, want -2", e)
	}
}

func TestSparsePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0":        func() { NewSparse(0, nil, nil) },
		"self":       func() { NewSparse(2, []SparseEntry{{1, 1, 1}}, nil) },
		"range":      func() { NewSparse(2, []SparseEntry{{0, 5, 1}}, nil) },
		"nan":        func() { NewSparse(2, []SparseEntry{{0, 1, math.NaN()}}, nil) },
		"bias len":   func() { NewSparse(2, nil, []float64{1}) },
		"energy len": func() { NewSparse(2, nil, nil).Energy([]int8{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkSparseApplyFlipDeg20(b *testing.B) {
	r := rng.New(1)
	n := 2000
	entries := randomSparseEntries(n, 0.01, r)
	sm := NewSparse(n, entries, nil)
	s := RandomSpins(n, r)
	f := sm.LocalFields(s, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.ApplyFlip(s, f, i%n)
	}
}
