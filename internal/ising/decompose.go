package ising

import (
	"fmt"

	"mbrim/internal/lattice"
)

// This file implements the bipartition rewrite of Eq. 3 in the paper:
// an n-spin problem splits into sub-problems (J_u, g_u) and (J_l, g_l)
// where the effective biases fold the cross-coupling terms with the
// *state* of the other partition:
//
//	g_u = μ h_u + J_× σ_l        g_l = μ h_l + J_×^T σ_u
//
// With the single-pair-count energy convention used throughout this
// package, the exact identity is
//
//	E(σ) = E_u(σ_u) + E_l(σ_l) − E_×(σ)
//
// where E_× = −Σ_{i∈u, j∈l} J_ij σ_i σ_j is counted once in each
// sub-problem. Because E(σ) − E_u(σ_u) is constant in σ_u for a frozen
// σ_l, minimizing the sub-problem minimizes the global energy — which
// is why divide-and-conquer works at all, and the dependence of g on
// the frozen state is why it parallelizes so poorly (Sec 3.3).

// SubProblem is one side of a bipartition: a self-contained Ising model
// over the selected spins whose biases absorb the frozen complement,
// plus the index map back into the parent problem.
type SubProblem struct {
	// Model is the extracted sub-model. Its bias vector holds g (with
	// μ = 1), so Model.Energy on local spins is E_u as defined above.
	Model *Model
	// Index maps local spin positions to parent positions.
	Index []int
	// GlueOps counts the multiply-accumulate operations spent forming
	// the effective biases — the "glue computation" of Sec 3.3 whose
	// cost caps divide-and-conquer speedup.
	GlueOps int64
}

// Extract builds the sub-problem over the parent indices in sub, with
// the complement's spins frozen at the given global assignment. The
// indices must be distinct and in range; spins must cover the parent.
func Extract(parent *Model, sub []int, spins []int8) *SubProblem {
	return ExtractFrom(parent.View(lattice.Dense), parent, sub, spins)
}

// ExtractFrom is Extract through an explicit coupling backend: the
// glue scan iterates only the stored nonzeros of each sub-spin's row,
// so a CSR view turns the O(n)-per-spin dense walk into O(degree).
// Divide-and-conquer flows that extract many windows from one parent
// build the view once and pass it here. GlueOps accounting is
// unchanged — the dense path always skipped zero couplings, and only
// nonzero cross terms ever counted.
func ExtractFrom(view lattice.Coupling, parent *Model, sub []int, spins []int8) *SubProblem {
	n := parent.N()
	if view.N() != n {
		panic("ising: ExtractFrom view/parent size mismatch")
	}
	if len(spins) != n {
		panic("ising: Extract with wrong spin vector length")
	}
	inSub := make([]int, n) // 0 = not in sub, else local index + 1
	for local, g := range sub {
		if g < 0 || g >= n {
			panic(fmt.Sprintf("ising: Extract index %d out of range", g))
		}
		if inSub[g] != 0 {
			panic(fmt.Sprintf("ising: Extract duplicate index %d", g))
		}
		inSub[g] = local + 1
	}
	k := len(sub)
	sp := &SubProblem{
		Model: NewModel(k),
		Index: append([]int(nil), sub...),
	}
	for local, g := range sub {
		gi := parent.Mu() * parent.Bias(g)
		view.Scan(g, func(j int, v float64) {
			if lj := inSub[j]; lj != 0 {
				if lj-1 > local {
					sp.Model.SetCoupling(local, lj-1, v)
				}
			} else {
				// Cross term: fold J_ij σ_j into the effective bias.
				gi += v * float64(spins[j])
				sp.GlueOps++
			}
		})
		sp.Model.SetBias(local, gi)
	}
	return sp
}

// Project writes the sub-problem's local spins back into the global
// assignment.
func (sp *SubProblem) Project(local []int8, global []int8) {
	if len(local) != len(sp.Index) {
		panic("ising: Project with wrong local spin length")
	}
	for i, g := range sp.Index {
		global[g] = local[i]
	}
}

// Gather extracts the sub-problem's spins from a global assignment.
func (sp *SubProblem) Gather(global []int8) []int8 {
	local := make([]int8, len(sp.Index))
	for i, g := range sp.Index {
		local[i] = global[g]
	}
	return local
}

// CrossEnergy returns E_× = −Σ J_ij σ_i σ_j over pairs that straddle
// the bipartition defined by membership in sub (as a set of parent
// indices). Together with the two sub-problem energies it reconstructs
// the global energy: E = E_u + E_l − E_×.
func CrossEnergy(parent *Model, sub []int, spins []int8) float64 {
	n := parent.N()
	mark := make([]bool, n)
	for _, g := range sub {
		mark[g] = true
	}
	e := 0.0
	for i := 0; i < n; i++ {
		if !mark[i] {
			continue
		}
		row := parent.Row(i)
		si := float64(spins[i])
		for j := 0; j < n; j++ {
			if mark[j] {
				continue
			}
			e -= row[j] * si * float64(spins[j])
		}
	}
	return e
}

// Complement returns the parent indices not present in sub, in order.
func Complement(n int, sub []int) []int {
	mark := make([]bool, n)
	for _, g := range sub {
		mark[g] = true
	}
	out := make([]int, 0, n-len(sub))
	for i := 0; i < n; i++ {
		if !mark[i] {
			out = append(out, i)
		}
	}
	return out
}
