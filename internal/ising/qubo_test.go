package ising

import (
	"math"
	"testing"
	"testing/quick"

	"mbrim/internal/rng"
)

func randomQUBO(n int, r *rng.Source) *QUBO {
	q := NewQUBO(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			q.SetCoeff(i, j, float64(r.Intn(9)-4))
		}
	}
	return q
}

func randomBits(n int, r *rng.Source) []bool {
	x := make([]bool, n)
	for i := range x {
		x[i] = r.Bool(0.5)
	}
	return x
}

func TestQUBOToIsingValueIdentity(t *testing.T) {
	// For every assignment: Value(x) = E(σ) + offset with σ = 2x−1.
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(20)
		q := randomQUBO(n, r)
		m, offset := q.ToIsing()
		for trial := 0; trial < 8; trial++ {
			x := randomBits(n, r)
			s := BitsToSpins(x)
			if math.Abs(q.Value(x)-(m.Energy(s)+offset)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIsingToQUBOValueIdentity(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(20)
		m := randomModel(n, r)
		q, offset := FromIsing(m)
		for trial := 0; trial < 8; trial++ {
			s := RandomSpins(n, r)
			x := SpinsToBits(s)
			if math.Abs(m.Energy(s)-(q.Value(x)+offset)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPreservesOptimum(t *testing.T) {
	// The minimizer of the QUBO must be the minimizer of the derived
	// Ising model (exhaustive over small n).
	r := rng.New(77)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(8)
		q := randomQUBO(n, r)
		m, offset := q.ToIsing()
		bestQ, bestE := math.Inf(1), math.Inf(1)
		var argQ, argE uint
		for mask := uint(0); mask < 1<<n; mask++ {
			x := make([]bool, n)
			for i := 0; i < n; i++ {
				x[i] = mask&(1<<i) != 0
			}
			if v := q.Value(x); v < bestQ {
				bestQ, argQ = v, mask
			}
			if e := m.Energy(BitsToSpins(x)); e < bestE {
				bestE, argE = e, mask
			}
		}
		if math.Abs(bestQ-(bestE+offset)) > 1e-9 {
			t.Fatalf("optimum values disagree: %v vs %v+%v", bestQ, bestE, offset)
		}
		// Argmins may differ only if degenerate; check values match.
		xQ := make([]bool, n)
		for i := 0; i < n; i++ {
			xQ[i] = argQ&(1<<i) != 0
		}
		xE := make([]bool, n)
		for i := 0; i < n; i++ {
			xE[i] = argE&(1<<i) != 0
		}
		if math.Abs(q.Value(xQ)-q.Value(xE)) > 1e-9 {
			t.Fatalf("argmins have different QUBO values")
		}
	}
}

func TestSpinsBitsRoundTrip(t *testing.T) {
	r := rng.New(5)
	s := RandomSpins(100, r)
	if got := BitsToSpins(SpinsToBits(s)); HammingDistance(got, s) != 0 {
		t.Fatal("spin/bit round trip changed values")
	}
	x := randomBits(100, r)
	back := SpinsToBits(BitsToSpins(x))
	for i := range x {
		if x[i] != back[i] {
			t.Fatal("bit/spin round trip changed values")
		}
	}
}

func TestQUBOValueZeroAssignment(t *testing.T) {
	r := rng.New(6)
	q := randomQUBO(10, r)
	if v := q.Value(make([]bool, 10)); v != 0 {
		t.Fatalf("all-zero assignment has value %v, want 0", v)
	}
}

func TestNewQUBOPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewQUBO(-1) did not panic")
		}
	}()
	NewQUBO(-1)
}
