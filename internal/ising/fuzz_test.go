package ising

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// FuzzReadQUBO checks the .qubo parser never panics and that accepted
// instances survive a write/read round trip up to objective values.
func FuzzReadQUBO(f *testing.F) {
	f.Add("p qubo 0 3 1 1\n0 0 -1\n0 2 2\n")
	f.Add("c comment\np qubo 0 1 0 0\n")
	f.Add("p qubo 0 2 0 1\n1 0 5\n")
	f.Add("garbage\n")
	f.Add("p qubo 0 -3 0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ReadQUBO(strings.NewReader(input))
		if err != nil {
			return
		}
		if q.N() < 1 {
			t.Fatalf("accepted QUBO with n=%d", q.N())
		}
		var buf bytes.Buffer
		if err := WriteQUBO(&buf, q); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		back, err := ReadQUBO(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != q.N() {
			t.Fatalf("round trip changed size")
		}
		// Spot-check the objective on a few assignments.
		for mask := 0; mask < 4 && mask < 1<<q.N(); mask++ {
			x := make([]bool, q.N())
			for i := 0; i < q.N() && i < 2; i++ {
				x[i] = mask&(1<<i) != 0
			}
			a, b := q.Value(x), back.Value(x)
			if a != b && !(a != a && b != b) { // tolerate NaN==NaN
				diff := a - b
				if diff < 0 {
					diff = -diff
				}
				scale := 1.0
				if a > 1 || a < -1 {
					scale = a
					if scale < 0 {
						scale = -scale
					}
				}
				if diff/scale > 1e-9 {
					t.Fatalf("objective changed: %v vs %v", a, b)
				}
			}
		}
	})
}

// FuzzModelConstruction drives Model construction with arbitrary
// coupling/bias values — including NaN, ±Inf and denormals smuggled in
// as raw bit patterns — and asserts the boundary contract: building
// and validating never panics, Validate rejects exactly the models
// containing a non-finite entry, and accepted models produce finite
// energies.
func FuzzModelConstruction(f *testing.F) {
	f.Add(uint8(4), []byte{})
	f.Add(uint8(3), []byte{0, 0x01, 0, 0, 0, 0, 0, 0, 0xf0, 0x7f}) // +Inf coupling
	f.Add(uint8(2), []byte{1, 0x00, 1, 0, 0, 0, 0, 0, 0xf8, 0x7f}) // NaN bias
	f.Add(uint8(8), []byte{0, 0x12, 1, 2, 3, 4, 5, 6, 7, 8, 1, 0x03, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%16 + 1
		m := NewModel(n)
		for at := 0; at+10 <= len(data); at += 10 {
			sel := int(data[at+1])
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[at+2 : at+10]))
			if data[at]%2 == 0 {
				i, j := sel%n, (sel/n)%n
				if i == j {
					continue // SetCoupling on the diagonal panics by contract
				}
				m.SetCoupling(i, j, v)
			} else {
				m.SetBias(sel%n, v)
			}
		}
		// Derive the expected verdict from the model itself: later
		// writes can overwrite an earlier non-finite entry.
		nonFinite := false
		for i := 0; i < n; i++ {
			for _, v := range m.Row(i) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					nonFinite = true
				}
			}
		}
		for _, v := range m.Biases() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				nonFinite = true
			}
		}
		err := m.Validate()
		if nonFinite && err == nil {
			t.Fatal("Validate accepted a non-finite model")
		}
		if !nonFinite && err != nil {
			t.Fatalf("Validate rejected a finite model: %v", err)
		}
		if err == nil {
			spins := make([]int8, n)
			for i := range spins {
				spins[i] = 1
				if i < len(data) && data[i]&1 == 1 {
					spins[i] = -1
				}
			}
			if e := m.Energy(spins); math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("finite model produced non-finite energy %v", e)
			}
		}
	})
}
