package ising

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadQUBO checks the .qubo parser never panics and that accepted
// instances survive a write/read round trip up to objective values.
func FuzzReadQUBO(f *testing.F) {
	f.Add("p qubo 0 3 1 1\n0 0 -1\n0 2 2\n")
	f.Add("c comment\np qubo 0 1 0 0\n")
	f.Add("p qubo 0 2 0 1\n1 0 5\n")
	f.Add("garbage\n")
	f.Add("p qubo 0 -3 0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ReadQUBO(strings.NewReader(input))
		if err != nil {
			return
		}
		if q.N() < 1 {
			t.Fatalf("accepted QUBO with n=%d", q.N())
		}
		var buf bytes.Buffer
		if err := WriteQUBO(&buf, q); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		back, err := ReadQUBO(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != q.N() {
			t.Fatalf("round trip changed size")
		}
		// Spot-check the objective on a few assignments.
		for mask := 0; mask < 4 && mask < 1<<q.N(); mask++ {
			x := make([]bool, q.N())
			for i := 0; i < q.N() && i < 2; i++ {
				x[i] = mask&(1<<i) != 0
			}
			a, b := q.Value(x), back.Value(x)
			if a != b && !(a != a && b != b) { // tolerate NaN==NaN
				diff := a - b
				if diff < 0 {
					diff = -diff
				}
				scale := 1.0
				if a > 1 || a < -1 {
					scale = a
					if scale < 0 {
						scale = -scale
					}
				}
				if diff/scale > 1e-9 {
					t.Fatalf("objective changed: %v vs %v", a, b)
				}
			}
		}
	})
}
