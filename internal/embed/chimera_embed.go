package embed

import (
	"fmt"
	"math"

	"mbrim/internal/ising"
)

// CompleteOnChimera embeds a dense logical model onto a chimera C_m
// (m×m cells of shore-size couplers) using Choi's cross construction:
// logical variable v, assigned home column c_v = v/shore and position
// k_v = v mod shore, occupies
//
//   - the right-side qubits at position k_v across cell-row c_v (its
//     horizontal arm, joined by the inter-cell horizontal couplers), and
//   - the left-side qubits at position k_v down cell-column c_v (its
//     vertical arm, joined by the vertical couplers),
//
// with the two arms fused in cell (c_v, c_v) through the intra-cell
// coupler. Chains u and v meet in cell (c_u, c_v), where u's
// horizontal arm and v's vertical arm share a cell and an intra-cell
// coupler carries J_uv. Every edge used is a legal chimera coupler, so
// the result is exactly what a D-Wave-style machine would be
// programmed with — and it consumes the entire 2·shore·m² qubits for
// shore·m logical spins, the quadratic cost of Sec 4.1.1.
//
// chainStrength 0 selects the same sufficient default as Complete.
func CompleteOnChimera(m *ising.Model, shore int, chainStrength float64) *Embedding {
	n := m.N()
	if n < 2 {
		panic(fmt.Sprintf("embed: CompleteOnChimera needs n >= 2, got %d", n))
	}
	if shore < 1 {
		panic(fmt.Sprintf("embed: shore %d", shore))
	}
	cells := (n + shore - 1) / shore // grid dimension m
	if cells < 2 {
		cells = 2 // a 1×1 grid has no inter-cell couplers to build arms
	}
	if chainStrength == 0 {
		worst := 0.0
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += math.Abs(m.Coupling(i, j))
			}
			s += math.Abs(m.Mu() * m.Bias(i))
			if s > worst {
				worst = s
			}
		}
		chainStrength = worst + 1
	}
	if chainStrength <= 0 {
		panic(fmt.Sprintf("embed: chain strength %v", chainStrength))
	}

	// Qubit indexing matches Chimera(): ((r·cells+c)·2+side)·shore+k.
	qubit := func(r, c, side, k int) int {
		return ((r*cells+c)*2+side)*shore + k
	}
	phys := ising.NewModel(cells * cells * 2 * shore)
	e := &Embedding{
		Logical:       n,
		Physical:      phys,
		ChainStrength: chainStrength,
		chains:        make([][]int, n),
	}

	for v := 0; v < n; v++ {
		cv, kv := v/shore, v%shore
		// Horizontal arm: right-side qubits across cell-row cv.
		chain := make([]int, 0, 2*cells)
		for c := 0; c < cells; c++ {
			chain = append(chain, qubit(cv, c, 1, kv))
			if c > 0 {
				phys.SetCoupling(qubit(cv, c-1, 1, kv), qubit(cv, c, 1, kv), chainStrength)
			}
		}
		// Vertical arm: left-side qubits down cell-column cv.
		for r := 0; r < cells; r++ {
			chain = append(chain, qubit(r, cv, 0, kv))
			if r > 0 {
				phys.SetCoupling(qubit(r-1, cv, 0, kv), qubit(r, cv, 0, kv), chainStrength)
			}
		}
		// Fuse the arms in the home cell (intra-cell coupler).
		phys.SetCoupling(qubit(cv, cv, 1, kv), qubit(cv, cv, 0, kv), chainStrength)
		e.chains[v] = chain

		// Spread the logical bias over the chain.
		if b := m.Bias(v); b != 0 {
			per := m.Mu() * b / float64(len(chain))
			for _, p := range chain {
				phys.SetBias(p, phys.Bias(p)+per)
			}
		}
	}

	// Cross couplers: chain u's horizontal arm meets chain v's
	// vertical arm in cell (c_u, c_v).
	for u := 0; u < n; u++ {
		cu, ku := u/shore, u%shore
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			j := m.Coupling(u, v)
			if j == 0 || u > v {
				continue
			}
			cv, kv := v/shore, v%shore
			// u horizontal (right side) in cell (cu, cv); v vertical
			// (left side) in the same cell.
			phys.AddCoupling(qubit(cu, cv, 1, ku), qubit(cu, cv, 0, kv), j)
		}
	}
	return e
}

// ChimeraLegal reports whether every coupling of the embedding's
// physical model is an edge of the chimera graph it claims to live on
// — the verification a real machine's programmer performs before
// loading weights.
func (e *Embedding) ChimeraLegal(cells, shore int) bool {
	topo := Chimera(cells, cells, shore)
	n := e.Physical.N()
	if n != topo.N() {
		return false
	}
	for i := 0; i < n; i++ {
		row := e.Physical.Row(i)
		for j := i + 1; j < n; j++ {
			if row[j] != 0 && topo.Weight(i, j) == 0 {
				return false
			}
		}
	}
	return true
}
