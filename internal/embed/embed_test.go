package embed

import (
	"math"
	"testing"
	"testing/quick"

	"mbrim/internal/exact"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
)

func logicalModel(n int, withBias bool, seed uint64) *ising.Model {
	r := rng.New(seed)
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetCoupling(i, j, float64(r.Intn(5)-2))
		}
		if withBias {
			m.SetBias(i, float64(r.Intn(3)-1))
		}
	}
	return m
}

func TestPhysicalNodeCount(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10} {
		e := Complete(logicalModel(n, false, 1), 0)
		if e.PhysicalNodes() != n*(n-1) {
			t.Fatalf("n=%d: %d physical nodes, want %d", n, e.PhysicalNodes(), n*(n-1))
		}
	}
}

func TestBoundedDegree(t *testing.T) {
	// Every physical node couples to at most 3 others — the locality
	// constraint that motivates the whole construction.
	e := Complete(logicalModel(8, true, 2), 0)
	for p := 0; p < e.Physical.N(); p++ {
		if d := e.Physical.Degree(p); d > 3 {
			t.Fatalf("physical node %d has degree %d", p, d)
		}
	}
}

func TestChainsPartitionPhysicalNodes(t *testing.T) {
	e := Complete(logicalModel(6, false, 3), 0)
	seen := make([]bool, e.Physical.N())
	for _, chain := range e.Chains() {
		for _, p := range chain {
			if seen[p] {
				t.Fatalf("physical node %d in two chains", p)
			}
			seen[p] = true
		}
	}
	for p, s := range seen {
		if !s {
			t.Fatalf("physical node %d in no chain", p)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(8)
		e := Complete(logicalModel(n, true, uint64(seed)), 0)
		logical := ising.RandomSpins(n, r)
		back := e.Decode(e.Encode(logical))
		return ising.HammingDistance(back, logical) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeHasNoChainBreaks(t *testing.T) {
	e := Complete(logicalModel(7, false, 4), 0)
	phys := e.Encode(ising.RandomSpins(7, rng.New(5)))
	if b := e.ChainBreaks(phys); b != 0 {
		t.Fatalf("encoded state has %d chain breaks", b)
	}
}

func TestChainBreaksDetected(t *testing.T) {
	e := Complete(logicalModel(4, false, 6), 0)
	phys := e.Encode([]int8{1, 1, 1, 1})
	phys[e.Chains()[0][0]] = -1
	if b := e.ChainBreaks(phys); b != 1 {
		t.Fatalf("ChainBreaks = %d, want 1", b)
	}
}

func TestEnergyIdentityOnIntactChains(t *testing.T) {
	// physical.Energy(Encode(σ)) = logical.Energy(σ) − offset, exactly.
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(7)
		m := logicalModel(n, true, uint64(seed))
		e := Complete(m, 0)
		offset := e.EnergyIdentityOffset()
		for trial := 0; trial < 4; trial++ {
			s := ising.RandomSpins(n, r)
			physE := e.Physical.Energy(e.Encode(s))
			if math.Abs(physE-(m.Energy(s)-offset)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGroundStatePreserved(t *testing.T) {
	// The embedded ground state decodes to the logical ground state
	// (checked exactly on small instances).
	for seed := uint64(0); seed < 3; seed++ {
		m := logicalModel(4, true, seed)
		e := Complete(m, 0)
		logicalOpt := exact.Solve(m)
		physOpt := exact.Solve(e.Physical) // 12 physical spins
		if b := e.ChainBreaks(physOpt.Spins); b != 0 {
			t.Fatalf("seed %d: ground state breaks %d chains", seed, b)
		}
		decoded := e.Decode(physOpt.Spins)
		if got := m.Energy(decoded); math.Abs(got-logicalOpt.Energy) > 1e-9 {
			t.Fatalf("seed %d: decoded energy %v, logical optimum %v", seed, got, logicalOpt.Energy)
		}
	}
}

func TestSAOnEmbeddedProblem(t *testing.T) {
	// End-to-end: anneal the physical model, decode, compare to
	// annealing the logical model directly. Embedded quality is
	// allowed to be worse (that's the paper's point) but must be a
	// valid, reasonable solution.
	g := graph.Complete(12, rng.New(7))
	m := g.ToIsing()
	e := Complete(m, 0)
	physRes := sa.SolveBatch(e.Physical, sa.Config{Sweeps: 600, Seed: 8}, 6)
	decoded := e.Decode(physRes.Best.Spins)
	embCut := g.CutValue(decoded)
	direct := sa.SolveBatch(m, sa.Config{Sweeps: 600, Seed: 8}, 6)
	directCut := g.CutValue(direct.Best.Spins)
	if embCut <= 0 {
		t.Fatalf("embedded cut %v", embCut)
	}
	if embCut > directCut {
		t.Logf("embedded (%v) beat direct (%v) — fine, just unusual", embCut, directCut)
	}
}

func TestEffectiveCapacity(t *testing.T) {
	cases := map[int]int{
		0: 0, 1: 0, 2: 2, 5: 2, 6: 3, 11: 3, 12: 4,
		2000: 45, // the D-Wave 2000q scale: ~45-64 effective of 2000 nominal
	}
	for phys, want := range cases {
		if got := EffectiveCapacity(phys); got != want {
			t.Fatalf("EffectiveCapacity(%d) = %d, want %d", phys, got, want)
		}
	}
	// Consistency: n(n-1) physical nodes fit exactly n.
	for n := 2; n < 60; n++ {
		if got := EffectiveCapacity(n * (n - 1)); got != n {
			t.Fatalf("EffectiveCapacity(%d) = %d, want %d", n*(n-1), got, n)
		}
	}
}

func TestDefaultChainStrengthStrongEnough(t *testing.T) {
	m := logicalModel(5, true, 9)
	e := Complete(m, 0)
	maxRow := 0.0
	for i := 0; i < 5; i++ {
		s := math.Abs(m.Mu() * m.Bias(i))
		for j := 0; j < 5; j++ {
			s += math.Abs(m.Coupling(i, j))
		}
		if s > maxRow {
			maxRow = s
		}
	}
	if e.ChainStrength <= maxRow {
		t.Fatalf("chain strength %v not above worst row weight %v", e.ChainStrength, maxRow)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=1":          func() { Complete(ising.NewModel(1), 0) },
		"neg strength": func() { Complete(ising.NewModel(3), -1) },
		"bad decode":   func() { Complete(ising.NewModel(3), 0).Decode(make([]int8, 2)) },
		"bad encode":   func() { Complete(ising.NewModel(3), 0).Encode(make([]int8, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
