package embed

import (
	"fmt"
	"math"

	"mbrim/internal/graph"
)

// This file models the chimera topology of the D-Wave machines the
// paper's Sec 4.1.1 numbers refer to: an m×n grid of K_{4,4} unit
// cells (shore size 4), with each qubit additionally coupled to its
// like-positioned neighbour in the adjacent cell. The known
// complete-graph embedding on chimera C_m (m×m cells) hosts K_{4m+1},
// so the nominal-2048-qubit C_16 hosts K_65 — the "about 64 effective
// nodes" the paper quotes for the D-Wave 2000q.

// Chimera returns the chimera graph with rows×cols unit cells of the
// given shore size (D-Wave uses shore 4), all couplers weight 1.
// Qubit indexing: cell (r, c), side s ∈ {0 left, 1 right}, position
// k ∈ [0, shore): index = ((r·cols + c)·2 + s)·shore + k.
func Chimera(rows, cols, shore int) *graph.Graph {
	if rows < 1 || cols < 1 || shore < 1 {
		panic(fmt.Sprintf("embed: Chimera(%d, %d, %d)", rows, cols, shore))
	}
	qubit := func(r, c, side, k int) int {
		return ((r*cols+c)*2+side)*shore + k
	}
	g := graph.New(rows * cols * 2 * shore)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Intra-cell bipartite K_{shore,shore}.
			for a := 0; a < shore; a++ {
				for b := 0; b < shore; b++ {
					g.AddEdge(qubit(r, c, 0, a), qubit(r, c, 1, b), 1)
				}
			}
			// Inter-cell couplers: left-side qubits connect vertically,
			// right-side horizontally (the D-Wave convention).
			if r+1 < rows {
				for k := 0; k < shore; k++ {
					g.AddEdge(qubit(r, c, 0, k), qubit(r+1, c, 0, k), 1)
				}
			}
			if c+1 < cols {
				for k := 0; k < shore; k++ {
					g.AddEdge(qubit(r, c, 1, k), qubit(r, c+1, 1, k), 1)
				}
			}
		}
	}
	return g
}

// ChimeraCapacity returns the largest complete graph embeddable on a
// square chimera of the given total qubit count and shore size, using
// the standard triangle embedding: C_m with shore L hosts K_{L·m+1}.
// Non-square or partial graphs round the cell grid down.
func ChimeraCapacity(qubits, shore int) int {
	if qubits < 1 || shore < 1 {
		panic(fmt.Sprintf("embed: ChimeraCapacity(%d, %d)", qubits, shore))
	}
	cellQubits := 2 * shore
	cells := qubits / cellQubits
	if cells < 1 {
		return 0
	}
	m := int(math.Sqrt(float64(cells)))
	if m < 1 {
		return 0
	}
	return shore*m + 1
}
