package embed

import "testing"

func TestChimeraStructure(t *testing.T) {
	// C_2 (2×2 cells, shore 4): 32 qubits; edges = 4 cells × 16
	// intra + 2 vertical × 4 + 2 horizontal × 4 = 64 + 16 = 80.
	g := Chimera(2, 2, 4)
	if g.N() != 32 {
		t.Fatalf("qubits = %d, want 32", g.N())
	}
	if g.M() != 80 {
		t.Fatalf("couplers = %d, want 80", g.M())
	}
}

func TestChimeraDegreesBounded(t *testing.T) {
	// Interior qubits have degree shore + 2 (shore intra-cell, two
	// inter-cell); nothing exceeds it — the locality constraint.
	g := Chimera(4, 4, 4)
	for v, d := range g.Degrees() {
		if d > 6 {
			t.Fatalf("qubit %d has degree %d > 6", v, d)
		}
		if d < 5 { // edge cells lose one inter-cell coupler
			t.Fatalf("qubit %d has degree %d < 5", v, d)
		}
	}
}

func TestChimeraConnected(t *testing.T) {
	if !Chimera(3, 3, 4).Connected() {
		t.Fatal("chimera graph disconnected")
	}
}

func TestChimeraBipartiteCells(t *testing.T) {
	// No intra-side edges within a cell: qubit (0,0,0,0) and
	// (0,0,0,1) must not couple.
	g := Chimera(1, 1, 4)
	if g.Weight(0, 1) != 0 {
		t.Fatal("same-side qubits coupled inside a cell")
	}
	if g.Weight(0, 4) == 0 {
		t.Fatal("opposite-side qubits not coupled inside a cell")
	}
}

func TestChimeraCapacityPaperNumber(t *testing.T) {
	// The paper (Sec 2.2/4.1.1): "a nominal 2000 nodes on the D-Wave
	// 2000q is equivalent to only about 64 effective nodes". The
	// 2000q is chimera C_16 with 2048 qubits, shore 4 → K_65.
	if got := ChimeraCapacity(2048, 4); got != 65 {
		t.Fatalf("C_16 capacity = %d, want 65 (~64 effective)", got)
	}
}

func TestChimeraCapacityScaling(t *testing.T) {
	// Capacity grows as √qubits: quadrupling qubits roughly doubles it.
	small := ChimeraCapacity(512, 4) // C_8: 4·8+1 = 33
	big := ChimeraCapacity(2048, 4)  // C_16: 65
	if small != 33 || big != 65 {
		t.Fatalf("capacities %d/%d, want 33/65", small, big)
	}
	if ChimeraCapacity(7, 4) != 0 {
		t.Fatal("sub-cell qubit count should have zero capacity")
	}
}

func TestChimeraPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero rows":  func() { Chimera(0, 1, 4) },
		"zero shore": func() { Chimera(1, 1, 0) },
		"bad qubits": func() { ChimeraCapacity(0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
