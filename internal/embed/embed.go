// Package embed models machines with only local coupling (Sec 4.1.1
// of the paper): architectures like D-Wave's, where each physical
// node couples to a handful of neighbours, so mapping a general
// n-spin problem requires *chains* of physical nodes acting as one
// logical spin. A general graph has O(n²) coupling parameters but the
// machine has O(N) couplers, so the embedding consumes O(n²) physical
// nodes — this is why "a nominal 2000 nodes is equivalent to only
// about 64 effective nodes" [24, 25], and why the paper restricts its
// architecture study to all-to-all machines.
//
// The embedding implemented here is the classic crossbar/TRIAD scheme
// for complete graphs: logical spin i becomes a ferromagnetic chain of
// n−1 physical nodes, one per potential partner; chains i and j touch
// at exactly one physical coupler, which carries J_ij. Every physical
// node has degree ≤ 3 (two chain neighbours, one cross coupler), so
// the physical model is realizable on a bounded-degree substrate.
package embed

import (
	"fmt"
	"math"

	"mbrim/internal/ising"
)

// Embedding is a logical problem mapped onto a local-coupling machine.
type Embedding struct {
	// Logical is the logical spin count n; Physical the embedded model
	// with n(n−1) physical spins.
	Logical  int
	Physical *ising.Model
	// ChainStrength is the ferromagnetic coupling holding each chain
	// together.
	ChainStrength float64
	// chains[i] lists the physical indices of logical spin i's chain.
	chains [][]int
}

// node returns the physical index of chain i's member dedicated to
// partner j (i ≠ j): a row-major layout over ordered pairs.
func node(n, i, j int) int {
	if j > i {
		j--
	}
	return i*(n-1) + j
}

// Complete embeds a dense logical model onto the crossbar scheme.
// chainStrength 0 selects 1 + max_i Σ_j |J_ij| — strong enough that
// breaking a chain never pays at the ground state. Logical biases are
// spread uniformly over each chain. Requires n ≥ 2.
func Complete(m *ising.Model, chainStrength float64) *Embedding {
	n := m.N()
	if n < 2 {
		panic(fmt.Sprintf("embed: Complete needs n >= 2, got %d", n))
	}
	if chainStrength == 0 {
		worst := 0.0
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += math.Abs(m.Coupling(i, j))
			}
			s += math.Abs(m.Mu() * m.Bias(i))
			if s > worst {
				worst = s
			}
		}
		chainStrength = worst + 1
	}
	if chainStrength <= 0 {
		panic(fmt.Sprintf("embed: chain strength %v", chainStrength))
	}

	phys := ising.NewModel(n * (n - 1))
	e := &Embedding{
		Logical:       n,
		Physical:      phys,
		ChainStrength: chainStrength,
		chains:        make([][]int, n),
	}
	for i := 0; i < n; i++ {
		chain := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				chain = append(chain, node(n, i, j))
			}
		}
		e.chains[i] = chain
		// Ferromagnetic path holding the chain together.
		for k := 0; k+1 < len(chain); k++ {
			phys.SetCoupling(chain[k], chain[k+1], chainStrength)
		}
		// Spread the logical bias across the chain so no single member
		// is disproportionately pulled.
		if b := m.Bias(i); b != 0 {
			per := m.Mu() * b / float64(len(chain))
			for _, p := range chain {
				phys.SetBias(p, per)
			}
		}
	}
	// One cross coupler per logical pair.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v := m.Coupling(i, j); v != 0 {
				phys.SetCoupling(node(n, i, j), node(n, j, i), v)
			}
		}
	}
	return e
}

// Chains returns the physical indices of each logical chain (do not
// mutate).
func (e *Embedding) Chains() [][]int { return e.chains }

// PhysicalNodes returns the physical spin count, n(n−1).
func (e *Embedding) PhysicalNodes() int { return e.Physical.N() }

// Decode maps a physical state to logical spins by majority vote over
// each chain (ties break to +1).
func (e *Embedding) Decode(phys []int8) []int8 {
	if len(phys) != e.Physical.N() {
		panic("embed: Decode length mismatch")
	}
	out := make([]int8, e.Logical)
	for i, chain := range e.chains {
		sum := 0
		for _, p := range chain {
			sum += int(phys[p])
		}
		if sum >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// Encode maps logical spins to the physical state with every chain
// intact.
func (e *Embedding) Encode(logical []int8) []int8 {
	if len(logical) != e.Logical {
		panic("embed: Encode length mismatch")
	}
	phys := make([]int8, e.Physical.N())
	for i, chain := range e.chains {
		for _, p := range chain {
			phys[p] = logical[i]
		}
	}
	return phys
}

// ChainBreaks counts chains whose members disagree — the quality
// hazard unique to embedded operation.
func (e *Embedding) ChainBreaks(phys []int8) int {
	breaks := 0
	for _, chain := range e.chains {
		first := phys[chain[0]]
		for _, p := range chain[1:] {
			if phys[p] != first {
				breaks++
				break
			}
		}
	}
	return breaks
}

// EnergyIdentityOffset returns the constant tying the two models
// together: for any chain-intact physical state,
// physical.Energy = logical.Energy − offset, where the offset is the
// ferromagnetic energy of the intact chains,
// Σ_i (len(chain_i)−1)·ChainStrength.
func (e *Embedding) EnergyIdentityOffset() float64 {
	total := 0.0
	for _, chain := range e.chains {
		total += float64(len(chain)-1) * e.ChainStrength
	}
	return total
}

// EffectiveCapacity returns the largest complete-graph size this
// scheme fits into `physical` nodes: the biggest n with n(n−1) ≤
// physical. The √N scaling is the paper's Sec 4.1.1 point.
func EffectiveCapacity(physical int) int {
	if physical < 2 {
		return 0
	}
	n := int((1 + math.Sqrt(float64(1+4*physical))) / 2)
	for n*(n-1) > physical {
		n--
	}
	return n
}
