package embed

import (
	"math"
	"testing"

	"mbrim/internal/exact"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
)

func TestChimeraEmbedUsesWholeFabric(t *testing.T) {
	// n = shore·m logical spins consume all 2·shore·m² qubits.
	m := logicalModel(8, false, 1) // shore 4, m = 2
	e := CompleteOnChimera(m, 4, 0)
	if e.PhysicalNodes() != 2*4*2*2 {
		t.Fatalf("physical qubits = %d, want 32", e.PhysicalNodes())
	}
	for _, chain := range e.Chains() {
		if len(chain) != 4 { // 2 horizontal + 2 vertical
			t.Fatalf("chain length %d, want 4", len(chain))
		}
	}
}

func TestChimeraEmbedIsTopologyLegal(t *testing.T) {
	// Every programmed coupler must exist in the chimera graph — the
	// property that makes this a real embedding rather than wishful
	// wiring.
	for _, tc := range []struct{ n, shore int }{
		{8, 4}, {6, 2}, {12, 4}, {9, 3},
	} {
		m := logicalModel(tc.n, true, uint64(tc.n))
		e := CompleteOnChimera(m, tc.shore, 0)
		cells := (tc.n + tc.shore - 1) / tc.shore
		if cells < 2 {
			cells = 2
		}
		if !e.ChimeraLegal(cells, tc.shore) {
			t.Fatalf("n=%d shore=%d: embedding uses non-chimera couplers", tc.n, tc.shore)
		}
	}
}

func TestChimeraEmbedEnergyIdentity(t *testing.T) {
	// On intact chains: physical energy = logical energy − chain
	// ferromagnetic offset (computed from actual chain edge counts).
	m := logicalModel(6, true, 2)
	e := CompleteOnChimera(m, 2, 0)
	// Each chain of length 2m has 2m−1 internal couplers of strength F.
	offset := 0.0
	for _, chain := range e.Chains() {
		offset += float64(len(chain)-1) * e.ChainStrength
	}
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		s := ising.RandomSpins(6, r)
		physE := e.Physical.Energy(e.Encode(s))
		if math.Abs(physE-(m.Energy(s)-offset)) > 1e-6 {
			t.Fatalf("identity broken by %v", physE-(m.Energy(s)-offset))
		}
	}
}

func TestChimeraEmbedGroundStatePreserved(t *testing.T) {
	// Exact ground state of the embedded problem decodes to the
	// logical optimum (n=4, shore 2 → 16 physical qubits).
	for seed := uint64(0); seed < 3; seed++ {
		m := logicalModel(4, true, seed+10)
		e := CompleteOnChimera(m, 2, 0)
		logicalOpt := exact.Solve(m)
		physOpt := exact.Solve(e.Physical)
		if b := e.ChainBreaks(physOpt.Spins); b != 0 {
			t.Fatalf("seed %d: ground state breaks %d chains", seed, b)
		}
		decoded := e.Decode(physOpt.Spins)
		if got := m.Energy(decoded); math.Abs(got-logicalOpt.Energy) > 1e-9 {
			t.Fatalf("seed %d: decoded %v, optimum %v", seed, got, logicalOpt.Energy)
		}
	}
}

func TestChimeraEmbedSAEndToEnd(t *testing.T) {
	g := graph.Complete(8, rng.New(20))
	m := g.ToIsing()
	e := CompleteOnChimera(m, 4, 0)
	res := sa.SolveBatch(e.Physical, sa.Config{Sweeps: 800, Seed: 21}, 8)
	decoded := e.Decode(res.Best.Spins)
	if cut := g.CutValue(decoded); cut <= 0 {
		t.Fatalf("embedded SA cut %v", cut)
	}
}

func TestChimeraEmbedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=1":        func() { CompleteOnChimera(ising.NewModel(1), 4, 0) },
		"zero shore": func() { CompleteOnChimera(ising.NewModel(4), 0, 0) },
		"neg chain":  func() { CompleteOnChimera(ising.NewModel(4), 4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
