// Fleet diagnostics: folding a federated cluster trace — the
// coordinator's own spans plus the worker streams the federation
// collector pulls — into per-worker attribution the single-run Reducer
// cannot see: who the straggler is, how much barrier time each worker
// alone is responsible for, and how each epoch's wall splits between
// compute (the slowest worker's chip_step) and synchronization
// (everything the barrier adds on top).
//
// The fold is keyed on span parentage, not epoch numbers, because span
// events carry no Epoch field: the coordinator opens one "epoch"
// interval per barrier-to-barrier round and workers parent their
// chip_step intervals under it, so an epoch accumulator is keyed by the
// coordinator's epoch span ID. Worker events arrive late — the
// collector pulls once per checkpoint round — so accumulators stay
// open until evicted; aggregation is additive and order-independent,
// which keeps the snapshot deterministic for a complete event set no
// matter how pulls interleaved.
package diag

import (
	"strconv"
	"strings"
	"sync"

	"mbrim/internal/obs"
)

// fleetMaxOpenEpochs bounds the per-epoch accumulator map. When
// exceeded, the oldest epochs are committed into the running aggregate
// and dropped; worker events for a committed epoch that arrive later
// (only possible after an extreme pull lag) are counted as late.
const fleetMaxOpenEpochs = 8192

// FleetConfig parameterizes a Fleet reducer.
type FleetConfig struct {
	// Workers is the fleet size (worker ordinals are 0..Workers-1).
	Workers int
	// Registry, when set, receives run-labeled fleet_* gauges mirroring
	// the snapshot. RunID is the "run" label value.
	Registry *obs.Registry
	RunID    string
}

// Fleet folds a federated event stream into cluster-level diagnostics.
// It is an obs.Tracer: the coordinator fans its own span stream into it
// live and the federation collector feeds it each pulled worker page.
// Safe for concurrent Emit and Snapshot.
type Fleet struct {
	mu  sync.Mutex
	cfg FleetConfig

	epochs  map[uint64]*fleetEpoch
	order   []uint64 // insertion order of open epoch span IDs
	workers []fleetWorker

	committedEpochs int
	syncNS          float64
	computeNS       float64
	stallNS         float64
	recoveryStallNS float64
	replayedEpochs  int64
	lateEvents      int64
	droppedEvents   int64
}

// fleetEpoch accumulates one coordinator epoch interval.
type fleetEpoch struct {
	wallNS  int64         // coordinator barrier-to-barrier wall
	stallNS float64       // fabric stall charged at the barrier
	steps   map[int]int64 // worker ordinal → max chip_step wall
	closed  bool          // coordinator SpanEnd seen
}

// fleetWorker is one worker's running totals.
type fleetWorker struct {
	epochs      int
	stepWallNS  int64
	maxStepNS   int64
	stragglerNS int64 // barrier time attributable to this worker alone
	flips       int64
	deaths      int
}

// NewFleet returns a Fleet reducer for a run.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	if reg := cfg.Registry; reg != nil {
		reg.SetHelp("fleet.sync_fraction", "Fraction of fleet wall time spent synchronizing rather than inside the slowest worker's compute.")
		reg.SetHelp("fleet.straggler", "Ordinal of the worker responsible for the most solo barrier wait, -1 when none.")
		reg.SetHelp("fleet.worker_step_wall_ns", "Cumulative chip_step wall per worker, from federated worker spans.")
		reg.SetHelp("fleet.worker_straggler_ns", "Cumulative barrier wait attributable to this worker alone.")
		reg.SetHelp("fleet.worker_losses", "Worker deaths the coordinator recovered from, attributed to the lost worker.")
		reg.SetHelp("fleet.dropped_events", "Worker ring events evicted before the federation collector pulled them.")
	}
	return &Fleet{cfg: cfg, epochs: map[uint64]*fleetEpoch{}, workers: make([]fleetWorker, cfg.Workers)}
}

// Emit folds one event. Implements obs.Tracer. Only span and
// fault/recovery events matter; everything else is ignored.
func (f *Fleet) Emit(e obs.Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch e.Kind {
	case obs.SpanStart:
		if e.Origin == "co" && e.Label == "epoch" {
			f.openEpochLocked(e.Span)
		}
	case obs.SpanEnd:
		switch e.Label {
		case "epoch":
			if ep := f.epochs[e.Span]; ep != nil {
				ep.wallNS = e.WallDurNS
				ep.stallNS = e.StallNS
				ep.closed = true
			}
		case "chip_step":
			f.observeStepLocked(e)
		}
	case obs.Fault:
		if e.Label == "worker-loss" && e.Chip >= 0 && e.Chip < len(f.workers) {
			f.workers[e.Chip].deaths++
			if reg := f.cfg.Registry; reg != nil {
				reg.GaugeWith("fleet.worker_losses", f.workerLabels(e.Chip)).Set(float64(f.workers[e.Chip].deaths))
			}
		}
	case obs.Recovery:
		f.recoveryStallNS += e.StallNS
		f.replayedEpochs += e.Count
	}
}

func (f *Fleet) openEpochLocked(span uint64) {
	if _, ok := f.epochs[span]; ok {
		return
	}
	f.epochs[span] = &fleetEpoch{steps: map[int]int64{}}
	f.order = append(f.order, span)
	for len(f.order) > fleetMaxOpenEpochs {
		oldest := f.order[0]
		f.order = f.order[1:]
		if ep := f.epochs[oldest]; ep != nil {
			f.commitLocked(ep)
			delete(f.epochs, oldest)
		}
	}
}

// observeStepLocked folds one worker chip_step interval. The worker
// ordinal rides in Origin ("w3"); the owning epoch in Parent. A worker
// hosting several slices handles their step RPCs concurrently, so its
// per-epoch compute is the max of its slice walls, not the sum.
func (f *Fleet) observeStepLocked(e obs.Event) {
	wi, ok := originWorker(e.Origin)
	if !ok || wi >= len(f.workers) {
		return
	}
	w := &f.workers[wi]
	w.flips += e.Count
	ep := f.epochs[e.Parent]
	if ep == nil {
		f.lateEvents++
		return
	}
	if prev, seen := ep.steps[wi]; !seen {
		w.epochs++
		ep.steps[wi] = e.WallDurNS
	} else if e.WallDurNS > prev {
		ep.steps[wi] = e.WallDurNS
	}
	if e.WallDurNS > w.maxStepNS {
		w.maxStepNS = e.WallDurNS
	}
	w.stepWallNS += e.WallDurNS
}

// commitLocked folds a finished epoch accumulator into the running
// aggregate: the slowest worker's wall is the epoch's compute, the
// barrier-to-barrier remainder is synchronization, and the gap between
// the slowest and second-slowest worker is barrier wait the straggler
// alone caused.
func (f *Fleet) commitLocked(ep *fleetEpoch) {
	if len(ep.steps) == 0 {
		return
	}
	f.committedEpochs++
	f.stallNS += ep.stallNS
	slowest, max1, max2 := -1, int64(-1), int64(-1)
	for wi, wall := range ep.steps {
		if wall > max1 {
			max2 = max1
			max1, slowest = wall, wi
		} else if wall > max2 {
			max2 = wall
		}
	}
	f.computeNS += float64(max1)
	if ep.closed && ep.wallNS > max1 {
		f.syncNS += float64(ep.wallNS - max1)
	}
	if slowest >= 0 && max2 >= 0 {
		f.workers[slowest].stragglerNS += max1 - max2
	}
}

// NoteDropped records worker ring events lost to eviction before the
// collector could pull them (called by the federation collector).
func (f *Fleet) NoteDropped(n int64) {
	if f == nil || n <= 0 {
		return
	}
	f.mu.Lock()
	f.droppedEvents += n
	f.mu.Unlock()
}

func (f *Fleet) workerLabels(wi int) obs.Labels {
	return obs.Labels{"run": f.cfg.RunID, "worker": strconv.Itoa(wi)}
}

// Snapshot returns the current fleet view, folding still-open epochs
// without committing them, and refreshes the run-labeled fleet_*
// gauges when a registry is configured.
func (f *Fleet) Snapshot() FleetSnapshot {
	if f == nil {
		return FleetSnapshot{Straggler: -1}
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	// Start from the committed aggregate, then overlay open epochs on a
	// scratch copy so Snapshot never commits anything itself.
	scratch := &Fleet{cfg: f.cfg,
		workers:         append([]fleetWorker(nil), f.workers...),
		syncNS:          f.syncNS,
		computeNS:       f.computeNS,
		stallNS:         f.stallNS,
		committedEpochs: f.committedEpochs,
	}
	for _, span := range f.order {
		if ep := f.epochs[span]; ep != nil {
			scratch.commitLocked(ep)
		}
	}
	workers := scratch.workers

	s := FleetSnapshot{
		Workers:         f.cfg.Workers,
		Epochs:          scratch.committedEpochs,
		ComputeNS:       scratch.computeNS,
		SyncNS:          scratch.syncNS,
		FabricStallNS:   scratch.stallNS,
		RecoveryStallNS: f.recoveryStallNS,
		ReplayedEpochs:  f.replayedEpochs,
		LateEvents:      f.lateEvents,
		DroppedEvents:   f.droppedEvents,
		Straggler:       -1,
	}
	if total := s.ComputeNS + s.SyncNS; total > 0 {
		s.SyncFraction = s.SyncNS / total
	}
	var worst int64
	for wi := range workers {
		w := workers[wi]
		wd := FleetWorkerDiag{
			Worker:      wi,
			Epochs:      w.epochs,
			StepWallNS:  w.stepWallNS,
			MaxStepNS:   w.maxStepNS,
			StragglerNS: w.stragglerNS,
			Flips:       w.flips,
			Deaths:      w.deaths,
		}
		if w.epochs > 0 {
			wd.MeanStepNS = float64(w.stepWallNS) / float64(w.epochs)
		}
		if w.stragglerNS > worst {
			worst = w.stragglerNS
			s.Straggler = wi
		}
		s.PerWorker = append(s.PerWorker, wd)
	}
	f.publishLocked(s)
	return s
}

func (f *Fleet) publishLocked(s FleetSnapshot) {
	reg := f.cfg.Registry
	if reg == nil {
		return
	}
	run := obs.Labels{"run": f.cfg.RunID}
	reg.GaugeWith("fleet.sync_fraction", run).Set(s.SyncFraction)
	reg.GaugeWith("fleet.straggler", run).Set(float64(s.Straggler))
	reg.GaugeWith("fleet.dropped_events", run).Set(float64(s.DroppedEvents))
	for _, w := range s.PerWorker {
		wl := f.workerLabels(w.Worker)
		reg.GaugeWith("fleet.worker_step_wall_ns", wl).Set(float64(w.StepWallNS))
		reg.GaugeWith("fleet.worker_straggler_ns", wl).Set(float64(w.StragglerNS))
	}
}

// Release drops every run-labeled fleet_* series this reducer
// registered. Called when the run is evicted from retention.
func (f *Fleet) Release() int {
	if f == nil || f.cfg.Registry == nil {
		return 0
	}
	run := f.cfg.RunID
	return f.cfg.Registry.Release(func(name string, labels obs.Labels) bool {
		return strings.HasPrefix(name, "fleet.") && labels["run"] == run
	})
}

// originWorker parses a worker ordinal out of an Origin stamp ("w0",
// "w12"); false for the coordinator's "co" or anything unstamped.
func originWorker(origin string) (int, bool) {
	if len(origin) < 2 || origin[0] != 'w' {
		return 0, false
	}
	n, err := strconv.Atoi(origin[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// FleetSnapshot is the cluster-level diagnostics view served at
// GET /cluster/runs/{id}/diag.
type FleetSnapshot struct {
	Workers int `json:"workers"`
	// Epochs is how many coordinator epoch intervals carried at least
	// one federated worker step.
	Epochs int `json:"epochs"`
	// ComputeNS sums each epoch's slowest worker wall; SyncNS the
	// barrier-to-barrier remainder on top of it. SyncFraction is
	// SyncNS/(ComputeNS+SyncNS) — the paper's sync-vs-compute ratio
	// measured on the live fleet rather than the model clock.
	ComputeNS    float64 `json:"computeNS"`
	SyncNS       float64 `json:"syncNS"`
	SyncFraction float64 `json:"syncFraction"`
	// FabricStallNS is modeled fabric stall charged at the folded
	// barriers; RecoveryStallNS modeled hand-off stall from recoveries.
	FabricStallNS   float64 `json:"fabricStallNS"`
	RecoveryStallNS float64 `json:"recoveryStallNS,omitempty"`
	ReplayedEpochs  int64   `json:"replayedEpochs,omitempty"`
	// Straggler is the ordinal of the worker with the most solo barrier
	// wait, -1 when no worker ever made the fleet wait.
	Straggler int               `json:"straggler"`
	PerWorker []FleetWorkerDiag `json:"perWorker,omitempty"`
	// LateEvents counts worker steps that arrived after their epoch was
	// evicted; DroppedEvents worker ring events lost before a pull.
	LateEvents    int64 `json:"lateEvents,omitempty"`
	DroppedEvents int64 `json:"droppedEvents,omitempty"`
}

// FleetWorkerDiag is one worker's attribution.
type FleetWorkerDiag struct {
	Worker int `json:"worker"`
	// Epochs counts epoch intervals this worker contributed a step to.
	Epochs     int   `json:"epochs"`
	StepWallNS int64 `json:"stepWallNS"`
	MaxStepNS  int64 `json:"maxStepNS"`
	// MeanStepNS is StepWallNS/Epochs — per-worker epoch latency.
	MeanStepNS float64 `json:"meanStepNS,omitempty"`
	// StragglerNS is barrier wait this worker alone caused: the gap to
	// the second-slowest worker in epochs where it was slowest.
	StragglerNS int64 `json:"stragglerNS"`
	Flips       int64 `json:"flips"`
	Deaths      int   `json:"deaths,omitempty"`
}
