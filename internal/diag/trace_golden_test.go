package diag_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mbrim/internal/core"
	"mbrim/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden Chrome trace")

// TestChromeTraceGolden pins the whole introspection pipeline end to
// end: a seeded 2-chip run's captured event stream, rendered through
// WriteChromeTrace, must reproduce the checked-in golden byte for
// byte. The export timeline is model time and span IDs are allocated
// at barriers in chip order, so after clearing the two wall-clock
// fields (the obs contract's only nondeterminism) the document is
// fully deterministic — any drift here means the span layout, ID
// allocation order, or exporter changed and the golden must be
// regenerated deliberately with -update.
func TestChromeTraceGolden(t *testing.T) {
	m := kgraph(24, 5)
	col := &collectTracer{}
	out, err := core.Solve(core.Request{
		Kind:          core.MBRIMConcurrent,
		Model:         m,
		Seed:          5,
		Chips:         2,
		DurationNS:    80,
		EpochNS:       10,
		SampleEveryNS: 20,
		Tracer:        col,
		SpanTrace:     true,
		Diag:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Energy >= 0 {
		t.Fatalf("no optimization progress (E=%v)", out.Energy)
	}
	events := col.events
	for i := range events {
		events[i].WallNS = 0
		events[i].WallDurNS = 0
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_k24_c2.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/diag -run ChromeTraceGolden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace drifted from golden (%d vs %d bytes); if the span layout change is intended, regenerate with -update",
			buf.Len(), len(want))
	}
}

// collectTracer accumulates the event stream in order.
type collectTracer struct{ events []obs.Event }

func (c *collectTracer) Emit(e obs.Event) { c.events = append(c.events, e) }
