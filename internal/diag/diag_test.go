package diag_test

import (
	"math"
	"strings"
	"testing"

	"mbrim/internal/core"
	"mbrim/internal/diag"
	"mbrim/internal/ising"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

// feedEnergy pushes a simple trajectory: t, e pairs.
func feedEnergy(r *diag.Reducer, pts ...[2]float64) {
	for _, p := range pts {
		r.Emit(obs.Event{Kind: obs.EnergySample, ModelNS: p[0], Value: p[1]})
	}
}

func TestPlateauDetection(t *testing.T) {
	r := diag.New(diag.Config{PlateauWindowNS: 100, PlateauEpsilon: 1e-3})
	// Improving steadily: not plateaued.
	feedEnergy(r, [2]float64{0, 0}, [2]float64{50, -10}, [2]float64{100, -20}, [2]float64{150, -30})
	s := r.Snapshot()
	if s.Plateaued {
		t.Fatalf("improving trajectory reported plateaued: %+v", s)
	}
	if s.ImprovementRate <= 0 {
		t.Fatalf("improvement rate = %v, want > 0", s.ImprovementRate)
	}
	if s.BestStalenessNS != 0 {
		t.Fatalf("best staleness = %v at a fresh best", s.BestStalenessNS)
	}
	// Then flat for longer than the window: plateaued, best stale.
	feedEnergy(r, [2]float64{200, -30}, [2]float64{300, -30}, [2]float64{400, -29.999})
	s = r.Snapshot()
	if !s.Plateaued {
		t.Fatalf("flat trajectory not reported plateaued: %+v", s)
	}
	if s.BestStalenessNS != 250 {
		t.Fatalf("best staleness = %v, want 250", s.BestStalenessNS)
	}
	if s.BestEnergy != -30 || s.LastEnergy != -29.999 {
		t.Fatalf("best/last = %v/%v", s.BestEnergy, s.LastEnergy)
	}
}

func TestShortRunNeverPlateaued(t *testing.T) {
	r := diag.New(diag.Config{PlateauWindowNS: 1000})
	feedEnergy(r, [2]float64{0, -5}, [2]float64{10, -5})
	if s := r.Snapshot(); s.Plateaued {
		t.Fatalf("run shorter than the window reported plateaued")
	}
}

func TestPairAndChipAggregation(t *testing.T) {
	r := diag.New(diag.Config{})
	emit := func(epoch, chip, owner int, stale int64, frac float64) {
		r.Emit(obs.Event{Kind: obs.PairStat, Epoch: epoch, Chip: chip, Peer: owner + 1,
			Count: stale, Value: frac, ModelNS: float64(epoch)})
	}
	emit(1, 0, 1, 2, 0.2)
	emit(1, 1, 0, 1, 0.1)
	emit(2, 0, 1, 4, 0.4)
	emit(2, 1, 0, 0, 0.0)
	s := r.Snapshot()
	if len(s.Pairs) != 2 {
		t.Fatalf("pairs = %d, want 2: %+v", len(s.Pairs), s.Pairs)
	}
	p01 := s.Pairs[0]
	if p01.Observer != 0 || p01.Owner != 1 {
		t.Fatalf("pair order not deterministic: %+v", s.Pairs)
	}
	if p01.Disagreement != 0.4 || p01.StaleSpins != 4 || p01.Samples != 2 || p01.LastEpoch != 2 {
		t.Fatalf("pair 0→1 = %+v", p01)
	}
	if math.Abs(p01.MeanDisagreement-0.3) > 1e-12 || p01.MaxDisagreement != 0.4 {
		t.Fatalf("pair 0→1 mean/max = %v/%v", p01.MeanDisagreement, p01.MaxDisagreement)
	}
	if len(s.ChipCoherence) != 2 {
		t.Fatalf("chip views = %+v", s.ChipCoherence)
	}
	c0 := s.ChipCoherence[0]
	// Chip 0 observes 0.4 ignorance; others see it at 0.0 visibility.
	if c0.Ignorance != 0.4 || c0.Visibility != 0.0 || math.Abs(c0.Coherence-0.6) > 1e-12 {
		t.Fatalf("chip 0 view = %+v", c0)
	}
}

func TestTrafficAttribution(t *testing.T) {
	r := diag.New(diag.Config{})
	r.Emit(obs.Event{Kind: obs.FabricTransfer, Epoch: 1, ModelNS: 10, Value: 100, StallNS: 5})
	r.Emit(obs.Event{Kind: obs.FabricTransfer, Epoch: 2, ModelNS: 20, Value: 300, StallNS: 0})
	r.Emit(obs.Event{Kind: obs.EpochSync, Epoch: 1, Count: 7})
	r.Emit(obs.Event{Kind: obs.Recovery, Label: "retransmit", Epoch: 2, StallNS: 3})
	s := r.Snapshot()
	tr := s.Traffic
	if tr.TotalBytes != 400 || tr.Epochs != 2 || tr.BytesPerEpoch != 200 {
		t.Fatalf("traffic = %+v", tr)
	}
	if tr.StallNS != 5 || tr.RecoveryStallNS != 3 || tr.SyncBitChanges != 7 {
		t.Fatalf("stall/sync = %+v", tr)
	}
	if want := 5.0 / 25.0; math.Abs(tr.StallFraction-want) > 1e-12 {
		t.Fatalf("stall fraction = %v, want %v", tr.StallFraction, want)
	}
}

func TestTTSEstimate(t *testing.T) {
	r := diag.New(diag.Config{TrialSamples: 2, TargetEnergy: -10, HasTarget: true, Tol: 0.5})
	// 4 trials of 2 samples each; trials 2 and 4 reach the target.
	feedEnergy(r,
		[2]float64{0, -5}, [2]float64{10, -6},
		[2]float64{20, -8}, [2]float64{30, -10},
		[2]float64{40, -7}, [2]float64{50, -9},
		[2]float64{60, -10.2}, [2]float64{70, -9.5},
	)
	s := r.Snapshot()
	if s.TTS == nil {
		t.Fatalf("no TTS estimate with %d samples", s.Samples)
	}
	est := s.TTS
	if est.Trials != 4 || est.SuccessP != 0.5 {
		t.Fatalf("trials/p = %d/%v, want 4/0.5", est.Trials, est.SuccessP)
	}
	if est.TrialNS != 10 {
		t.Fatalf("trialNS = %v, want 10", est.TrialNS)
	}
	if !(est.PLow > 0 && est.PLow < 0.5 && est.PHigh > 0.5 && est.PHigh < 1) {
		t.Fatalf("Wilson band = [%v, %v]", est.PLow, est.PHigh)
	}
	if est.TTSNS <= 0 {
		t.Fatalf("TTS = %v, want finite positive", est.TTSNS)
	}
	// Interval inverts: more success probability, less time.
	if !(est.TTSLowNS <= est.TTSNS && est.TTSNS <= est.TTSHighNS) {
		t.Fatalf("TTS interval not ordered: [%v, %v, %v]", est.TTSLowNS, est.TTSNS, est.TTSHighNS)
	}
}

func TestTTSNeverSucceededIsSentinel(t *testing.T) {
	r := diag.New(diag.Config{TrialSamples: 2, TargetEnergy: -100, HasTarget: true})
	feedEnergy(r, [2]float64{0, -5}, [2]float64{10, -6}, [2]float64{20, -7}, [2]float64{30, -8})
	est := r.Snapshot().TTS
	if est == nil {
		t.Fatalf("no estimate")
	}
	if est.SuccessP != 0 || est.TTSNS != -1 {
		t.Fatalf("zero-success estimate = %+v, want -1 sentinel", est)
	}
	// pLow = 0 makes the pessimistic bound +Inf → sentinel too, but the
	// Wilson upper bound stays above zero, so the optimistic bound is a
	// finite "could be as fast as" figure.
	if est.TTSHighNS != -1 {
		t.Fatalf("TTSHighNS = %v, want -1 (pLow = 0)", est.TTSHighNS)
	}
	if est.TTSLowNS <= 0 {
		t.Fatalf("TTSLowNS = %v, want finite positive (Wilson pHigh > 0)", est.TTSLowNS)
	}
}

func TestTTSDefaultsToSelfTarget(t *testing.T) {
	r := diag.New(diag.Config{TrialSamples: 2})
	feedEnergy(r, [2]float64{0, -5}, [2]float64{10, -20}, [2]float64{20, -19.9}, [2]float64{30, -18})
	est := r.Snapshot().TTS
	if est == nil {
		t.Fatalf("no estimate")
	}
	if est.TargetEnergy != -20 {
		t.Fatalf("self target = %v, want best -20", est.TargetEnergy)
	}
	if est.Tol != 0.2 {
		t.Fatalf("default tol = %v, want 1%% of |best| = 0.2", est.Tol)
	}
	// Trial 1 hits -20 exactly; trial 2's best -19.9 is within tol.
	if est.SuccessP != 1 {
		t.Fatalf("p = %v, want 1", est.SuccessP)
	}
}

func TestPrometheusSeries(t *testing.T) {
	reg := obs.NewRegistry()
	r := diag.New(diag.Config{Registry: reg, RunID: "run-1", PlateauWindowNS: 10})
	r.Emit(obs.Event{Kind: obs.PairStat, Epoch: 1, Chip: 0, Peer: 2, Count: 3, Value: 0.25})
	feedEnergy(r, [2]float64{0, -1}, [2]float64{50, -1})
	r.Emit(obs.Event{Kind: obs.FabricTransfer, Epoch: 1, Value: 64, StallNS: 2})
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		"diag_pair_disagreement",
		`from="0"`,
		`to="1"`,
		"diag_plateau",
		"diag_best_staleness_ns",
		"diag_sync_cost_bytes",
		"diag_stall_ns",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, text)
		}
	}
}

// kgraph builds a dense random ±1-coupled model.
func kgraph(n int, seed uint64) *ising.Model {
	m := ising.NewModel(n)
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 1.0
			if r.Bool(0.5) {
				v = -1
			}
			m.SetCoupling(i, j, v)
		}
	}
	return m
}

// TestEndToEndThreeChips is the acceptance path: a seeded 3-chip
// concurrent run with span tracing and diagnostics on must produce a
// diag snapshot with all six directed chip-pair measurements, a
// plateau verdict, and a TTS estimate with CI bounds.
func TestEndToEndThreeChips(t *testing.T) {
	ring := obs.NewRing(1 << 14)
	red := diag.New(diag.Config{TrialSamples: 4, PlateauWindowNS: 100})
	_, err := core.Solve(core.Request{
		Kind:          core.MBRIMConcurrent,
		Model:         kgraph(24, 11),
		Seed:          11,
		DurationNS:    400,
		EpochNS:       10,
		Chips:         3,
		SampleEveryNS: 10,
		Tracer:        obs.Fanout(ring, red),
		SpanTrace:     true,
		Diag:          true,
	})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	s := red.Snapshot()
	if len(s.Pairs) != 6 {
		t.Fatalf("pairs = %d, want 6 (3 chips, directed): %+v", len(s.Pairs), s.Pairs)
	}
	if len(s.ChipCoherence) != 3 {
		t.Fatalf("chip views = %d, want 3", len(s.ChipCoherence))
	}
	if !s.HasEnergy || s.Samples == 0 {
		t.Fatalf("no trajectory folded: %+v", s)
	}
	if s.TTS == nil {
		t.Fatalf("no TTS estimate after %d samples", s.Samples)
	}
	if s.TTS.PLow > s.TTS.SuccessP || s.TTS.PHigh < s.TTS.SuccessP {
		t.Fatalf("CI does not bracket p: %+v", s.TTS)
	}
	if s.Traffic.TotalBytes <= 0 || s.Traffic.Epochs == 0 {
		t.Fatalf("no traffic attribution: %+v", s.Traffic)
	}
	// The same stream must carry the span hierarchy.
	events, _ := ring.EventsSince(0)
	labels := map[string]bool{}
	for _, e := range events {
		if e.Kind == obs.SpanStart {
			labels[e.Label] = true
		}
	}
	for _, want := range []string{"solve", "epoch", "chip_step", "sync"} {
		if !labels[want] {
			t.Fatalf("span stream missing %q; have %v", want, labels)
		}
	}
}
