// Package diag reduces a solve's live event stream into convergence
// and partition-quality diagnostics: energy-trajectory analytics
// (improvement rate, plateau detection, best-so-far staleness),
// per-chip and chip-pair shadow-spin disagreement derived from the
// PairStat events the multichip runtime emits, per-epoch traffic and
// stall attribution, and a live time-to-solution estimate with Wilson
// confidence bounds built on internal/metrics.
//
// A Reducer is an obs.Tracer: compose it into a run's fan-out (the run
// manager does this when diagnostics are requested) and call Snapshot
// at any time for the current view. Reduction is pure folding over the
// stream — the Reducer never touches solver state, so attaching it
// cannot perturb a seeded trajectory.
//
// The chip-pair disagreement measure follows the partitioned-solver
// analyses of Burns & Huang (multi-FPGA Ising partitioning) and the
// source paper's Sec 5.4 ignorance discussion: for ordered pair
// (observer a, owner b), the fraction of b's owned spins that a's
// shadow registers hold wrong. Sampled before boundary sync it is the
// ignorance a annealed against during the epoch; its complement is the
// pair's coherence rate.
package diag

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mbrim/internal/metrics"
	"mbrim/internal/obs"
)

// Config parameterizes a Reducer. The zero value is usable.
type Config struct {
	// PlateauWindowNS is the model-time window over which the energy
	// trajectory must improve by at least PlateauEpsilon (relative) to
	// not be considered plateaued. Default 1000 model ns.
	PlateauWindowNS float64
	// PlateauEpsilon is the relative improvement threshold. Default 1e-3.
	PlateauEpsilon float64

	// TargetEnergy is the success threshold for the live TTS estimate.
	// When HasTarget is false the running best-so-far energy is the
	// target — the estimate then reads "time to re-reach the best known
	// solution", the self-referential TTS a live run can always compute.
	TargetEnergy float64
	HasTarget    bool
	// Tol is the absolute tolerance added to the target. When zero and
	// no explicit target is set, 1% of |best| is used.
	Tol float64
	// Confidence is the TTS confidence level q. Default 0.99.
	Confidence float64
	// TrialSamples is how many consecutive trajectory samples form one
	// TTS trial window. Default 8.
	TrialSamples int

	// Registry, when set, receives labeled gauge series mirroring the
	// snapshot: diag.pair_disagreement{run,from,to}, diag.plateau{run},
	// diag.best_staleness_ns{run}, diag.sync_cost_bytes{run} and
	// diag.stall_ns{run}. RunID is the "run" label value.
	Registry *obs.Registry
	RunID    string
}

func (c *Config) defaults() {
	if c.PlateauWindowNS <= 0 {
		c.PlateauWindowNS = 1000
	}
	if c.PlateauEpsilon <= 0 {
		c.PlateauEpsilon = 1e-3
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.99
	}
	if c.TrialSamples <= 0 {
		c.TrialSamples = 8
	}
}

// sample is one (model time, energy) trajectory point.
type sample struct {
	t, e float64
}

// pairKey identifies a directed (observer, owner) chip pair.
type pairKey struct{ observer, owner int }

// pairAcc accumulates one pair's disagreement series.
type pairAcc struct {
	latest    float64
	latestN   int64
	sum, max  float64
	samples   int
	lastEpoch int
}

// Reducer folds an event stream into a diagnostics view. Safe for
// concurrent Emit and Snapshot.
type Reducer struct {
	mu  sync.Mutex
	cfg Config

	engine  string
	seed    uint64
	epoch   int
	chips   int
	modelNS float64

	samples   []sample
	hasEnergy bool
	best      float64
	bestAtNS  float64
	last      float64

	pairs map[pairKey]*pairAcc

	trafficBytes    float64
	stallNS         float64
	recoveryStallNS float64
	syncBitChanges  int64
	fabricEpochs    int
	queueWaitNS     int64

	entrants       map[int]*entrantAcc
	raceWinner     int
	raceWinnerKind string
	raceHitTarget  bool
}

// entrantAcc accumulates one portfolio entrant's view: identity from
// the race events (EntrantStart/EntrantEnd), energy envelope from the
// entrant's origin-stamped inner stream.
type entrantAcc struct {
	kind      string
	seed      uint64
	phase     string
	events    int
	hasEnergy bool
	best      float64
	last      float64
	won       bool
	wallNS    int64
}

// New returns a Reducer with the given configuration.
func New(cfg Config) *Reducer {
	cfg.defaults()
	if reg := cfg.Registry; reg != nil {
		reg.SetHelp("diag.pair_disagreement", "Latest shadow-spin disagreement fraction per directed chip pair (observer from, owner to).")
		reg.SetHelp("diag.plateau", "1 when the energy trajectory is plateaued over the configured window, else 0.")
		reg.SetHelp("diag.best_staleness_ns", "Model time since the best-so-far energy last improved.")
		reg.SetHelp("diag.sync_cost_bytes", "Cumulative fabric bytes attributed to the run's boundary synchronization.")
		reg.SetHelp("diag.stall_ns", "Cumulative fabric and recovery stall charged to the run.")
	}
	return &Reducer{cfg: cfg, pairs: map[pairKey]*pairAcc{}}
}

// Emit folds one event. Implements obs.Tracer.
func (r *Reducer) Emit(e obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// A portfolio race's inner streams arrive origin-stamped ("e0",
	// "e1", …). They fold into the per-entrant view, not the top-level
	// one — entrant engines run on their own model clocks, so merging
	// their trajectories would corrupt the plateau and TTS analytics.
	// (Worker origins from distributed runs — "w0", "co" — pass through
	// untouched; only e<digits> is an entrant.)
	if idx, ok := entrantOrigin(e.Origin); ok {
		r.observeEntrantStream(idx, e)
		return
	}
	switch e.Kind {
	case obs.EntrantStart, obs.EntrantEnd, obs.PortfolioWin:
		r.observeRace(e)
		return
	}
	if e.Epoch > r.epoch {
		r.epoch = e.Epoch
	}
	if e.Chip+1 > r.chips {
		r.chips = e.Chip + 1
	}
	if e.ModelNS > r.modelNS {
		r.modelNS = e.ModelNS
	}
	switch e.Kind {
	case obs.RunStart:
		r.engine = e.Label
		r.seed = e.Seed
	case obs.EnergySample, obs.RunEnd:
		r.observeEnergy(e.ModelNS, e.Value)
	case obs.PairStat:
		r.observePair(e)
	case obs.EpochSync:
		r.syncBitChanges += e.Count
	case obs.FabricTransfer:
		r.trafficBytes += e.Value
		r.stallNS += e.StallNS
		r.fabricEpochs++
		if reg := r.cfg.Registry; reg != nil {
			reg.GaugeWith("diag.sync_cost_bytes", obs.Labels{"run": r.cfg.RunID}).Set(r.trafficBytes)
			reg.GaugeWith("diag.stall_ns", obs.Labels{"run": r.cfg.RunID}).Set(r.stallNS + r.recoveryStallNS)
		}
	case obs.Recovery:
		r.recoveryStallNS += e.StallNS
	case obs.SpanEnd:
		if e.Label == "queue_wait" && e.WallDurNS > r.queueWaitNS {
			r.queueWaitNS = e.WallDurNS
		}
	}
}

// entrantOrigin parses a portfolio entrant origin ("e0", "e1", …);
// every other origin (distributed workers, coordinator) is not one.
func entrantOrigin(origin string) (int, bool) {
	if len(origin) < 2 || origin[0] != 'e' {
		return 0, false
	}
	n, err := strconv.Atoi(origin[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// entrantAccFor lazily allocates one entrant's accumulator. Caller
// holds r.mu.
func (r *Reducer) entrantAccFor(idx int) *entrantAcc {
	if r.entrants == nil {
		r.entrants = map[int]*entrantAcc{}
		r.raceWinner = -1
	}
	acc := r.entrants[idx]
	if acc == nil {
		acc = &entrantAcc{phase: "racing"}
		r.entrants[idx] = acc
	}
	return acc
}

// observeEntrantStream folds one origin-stamped event from an entrant's
// inner solve into that entrant's envelope. Caller holds r.mu.
func (r *Reducer) observeEntrantStream(idx int, e obs.Event) {
	acc := r.entrantAccFor(idx)
	acc.events++
	switch e.Kind {
	case obs.RunStart:
		if acc.kind == "" {
			acc.kind = e.Label
		}
		if acc.seed == 0 {
			acc.seed = e.Seed
		}
	case obs.EnergySample, obs.RunEnd:
		acc.last = e.Value
		if !acc.hasEnergy || e.Value < acc.best {
			acc.best = e.Value
		}
		acc.hasEnergy = true
	}
}

// observeRace folds the portfolio engine's own race events (emitted
// unstamped on the top-level stream). Caller holds r.mu.
func (r *Reducer) observeRace(e obs.Event) {
	acc := r.entrantAccFor(e.Chip)
	switch e.Kind {
	case obs.EntrantStart:
		acc.kind = e.Label
		acc.seed = e.Seed
		acc.phase = "racing"
	case obs.EntrantEnd:
		if acc.kind == "" {
			acc.kind = e.Label
		}
		acc.wallNS = e.WallDurNS
		if e.Count > 0 {
			acc.phase = "cancelled"
		} else {
			acc.phase = "done"
		}
		acc.last = e.Value
		if !acc.hasEnergy || e.Value < acc.best {
			acc.best = e.Value
		}
		acc.hasEnergy = true
	case obs.PortfolioWin:
		acc.won = true
		r.raceWinner = e.Chip
		r.raceWinnerKind = e.Label
		r.raceHitTarget = e.Count > 0
	}
}

func (r *Reducer) observeEnergy(t, e float64) {
	r.samples = append(r.samples, sample{t, e})
	r.last = e
	if !r.hasEnergy || e < r.best {
		r.best = e
		r.bestAtNS = t
		r.hasEnergy = true
	}
	if reg := r.cfg.Registry; reg != nil {
		labels := obs.Labels{"run": r.cfg.RunID}
		reg.GaugeWith("diag.best_staleness_ns", labels).Set(t - r.bestAtNS)
		plateau := 0.0
		if r.plateauedLocked() {
			plateau = 1
		}
		reg.GaugeWith("diag.plateau", labels).Set(plateau)
	}
}

func (r *Reducer) observePair(e obs.Event) {
	if e.Peer <= 0 {
		return
	}
	k := pairKey{observer: e.Chip, owner: e.Peer - 1}
	acc := r.pairs[k]
	if acc == nil {
		acc = &pairAcc{}
		r.pairs[k] = acc
	}
	acc.latest = e.Value
	acc.latestN = e.Count
	acc.sum += e.Value
	if e.Value > acc.max {
		acc.max = e.Value
	}
	acc.samples++
	acc.lastEpoch = e.Epoch
	if reg := r.cfg.Registry; reg != nil {
		reg.GaugeWith("diag.pair_disagreement", obs.Labels{
			"run":  r.cfg.RunID,
			"from": strconv.Itoa(k.observer),
			"to":   strconv.Itoa(k.owner),
		}).Set(e.Value)
	}
}

// plateauedLocked reports whether the trajectory failed to improve by
// the configured relative epsilon over the configured window. Requires
// the window to be covered by samples; a short run is never plateaued.
func (r *Reducer) plateauedLocked() bool {
	n := len(r.samples)
	if n < 2 {
		return false
	}
	lastT := r.samples[n-1].t
	winStart := lastT - r.cfg.PlateauWindowNS
	// Best energy at or before the window start; if no sample precedes
	// the window the trajectory hasn't covered it yet.
	baseline := math.Inf(1)
	covered := false
	for _, s := range r.samples {
		if s.t <= winStart {
			covered = true
			if s.e < baseline {
				baseline = s.e
			}
		}
	}
	if !covered {
		return false
	}
	// Improvement inside the window, relative to the baseline scale.
	improvement := baseline - r.best
	scale := math.Max(math.Abs(baseline), 1e-12)
	return improvement/scale < r.cfg.PlateauEpsilon
}

// improvementRateLocked is the mean energy decrease per model ns over
// the plateau window (positive while improving), 0 when undefined.
func (r *Reducer) improvementRateLocked() float64 {
	n := len(r.samples)
	if n < 2 {
		return 0
	}
	last := r.samples[n-1]
	winStart := last.t - r.cfg.PlateauWindowNS
	ref := r.samples[0]
	for _, s := range r.samples {
		if s.t <= winStart {
			ref = s
		} else {
			break
		}
	}
	if last.t <= ref.t {
		return 0
	}
	return (ref.e - last.e) / (last.t - ref.t)
}

// Release drops every run-labeled diag_* series this Reducer
// registered — pair-disagreement gauges are per (run, from, to), so a
// long-lived daemon that never releases them leaks registry
// cardinality linearly in runs served. The run manager calls this when
// a run ages out of retention. Returns the number of series dropped.
func (r *Reducer) Release() int {
	reg := r.cfg.Registry
	if reg == nil {
		return 0
	}
	run := r.cfg.RunID
	return reg.Release(func(name string, labels obs.Labels) bool {
		return strings.HasPrefix(name, "diag.") && labels["run"] == run
	})
}

// Snapshot returns the current diagnostics view.
func (r *Reducer) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Engine:  r.engine,
		Seed:    r.seed,
		Epoch:   r.epoch,
		Chips:   r.chips,
		ModelNS: r.modelNS,
		Samples: len(r.samples),
	}
	if r.hasEnergy {
		s.HasEnergy = true
		s.BestEnergy = r.best
		s.LastEnergy = r.last
		s.BestStalenessNS = r.samples[len(r.samples)-1].t - r.bestAtNS
		s.ImprovementRate = r.improvementRateLocked()
		s.Plateaued = r.plateauedLocked()
	}
	s.Pairs = r.pairSnapshotsLocked()
	s.ChipCoherence = chipViews(s.Pairs, r.chips)
	s.Traffic = TrafficDiag{
		TotalBytes:      r.trafficBytes,
		StallNS:         r.stallNS,
		RecoveryStallNS: r.recoveryStallNS,
		SyncBitChanges:  r.syncBitChanges,
		Epochs:          r.fabricEpochs,
	}
	if r.fabricEpochs > 0 {
		s.Traffic.BytesPerEpoch = r.trafficBytes / float64(r.fabricEpochs)
	}
	if total := r.modelNS + r.stallNS; total > 0 {
		s.Traffic.StallFraction = r.stallNS / total
	}
	s.TTS = r.ttsLocked()
	s.QueueWaitNS = r.queueWaitNS
	s.Portfolio = r.portfolioSnapshotLocked()
	return s
}

// portfolioSnapshotLocked materializes the race view, nil unless any
// entrant event has been seen. Caller holds r.mu.
func (r *Reducer) portfolioSnapshotLocked() *PortfolioDiag {
	if r.entrants == nil {
		return nil
	}
	pd := &PortfolioDiag{
		Winner:     r.raceWinner,
		WinnerKind: r.raceWinnerKind,
		HitTarget:  r.raceHitTarget,
	}
	idxs := make([]int, 0, len(r.entrants))
	for i := range r.entrants {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		acc := r.entrants[i]
		pd.Entrants = append(pd.Entrants, EntrantDiag{
			Index: i, Kind: acc.kind, Seed: acc.seed, Phase: acc.phase,
			Events: acc.events, HasEnergy: acc.hasEnergy,
			BestEnergy: acc.best, LastEnergy: acc.last,
			Won: acc.won, WallNS: acc.wallNS,
		})
	}
	return pd
}

func (r *Reducer) pairSnapshotsLocked() []PairDiag {
	if len(r.pairs) == 0 {
		return nil
	}
	out := make([]PairDiag, 0, len(r.pairs))
	for k, acc := range r.pairs {
		out = append(out, PairDiag{
			Observer:         k.observer,
			Owner:            k.owner,
			Disagreement:     acc.latest,
			StaleSpins:       acc.latestN,
			MeanDisagreement: acc.sum / float64(acc.samples),
			MaxDisagreement:  acc.max,
			Samples:          acc.samples,
			LastEpoch:        acc.lastEpoch,
		})
	}
	// Deterministic order: by observer, then owner.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Observer < b.Observer || (a.Observer == b.Observer && a.Owner < b.Owner) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

// chipViews aggregates directed pair stats into per-chip coherence:
// Ignorance is the mean latest disagreement where the chip observes
// others, Visibility the mean where others observe it, Coherence the
// complement of Ignorance.
func chipViews(pairs []PairDiag, chips int) []ChipDiag {
	if len(pairs) == 0 {
		return nil
	}
	type agg struct {
		asObs, asOwn float64
		nObs, nOwn   int
	}
	accs := make([]agg, chips)
	for _, p := range pairs {
		if p.Observer < chips {
			accs[p.Observer].asObs += p.Disagreement
			accs[p.Observer].nObs++
		}
		if p.Owner < chips {
			accs[p.Owner].asOwn += p.Disagreement
			accs[p.Owner].nOwn++
		}
	}
	out := make([]ChipDiag, 0, chips)
	for ci, a := range accs {
		if a.nObs == 0 && a.nOwn == 0 {
			continue
		}
		d := ChipDiag{Chip: ci, Coherence: 1}
		if a.nObs > 0 {
			d.Ignorance = a.asObs / float64(a.nObs)
			d.Coherence = 1 - d.Ignorance
		}
		if a.nOwn > 0 {
			d.Visibility = a.asOwn / float64(a.nOwn)
		}
		out = append(out, d)
	}
	return out
}

// ttsLocked computes the live TTS estimate: consecutive trajectory
// samples are chunked into trials of cfg.TrialSamples each, a trial
// succeeds when its best sample reaches target+tol, and the success
// probability carries a Wilson interval that inverts into TTS bounds.
// Nil until at least one full trial window exists.
func (r *Reducer) ttsLocked() *TTSEstimate {
	w := r.cfg.TrialSamples
	if len(r.samples) < w || w < 1 {
		return nil
	}
	target, tol := r.cfg.TargetEnergy, r.cfg.Tol
	if !r.cfg.HasTarget {
		target = r.best
		if tol <= 0 {
			tol = 0.01 * math.Abs(r.best)
		}
	}
	trials := len(r.samples) / w
	mins := make([]float64, 0, trials)
	var spanSum float64
	for i := 0; i < trials; i++ {
		win := r.samples[i*w : (i+1)*w]
		best := win[0].e
		for _, s := range win[1:] {
			if s.e < best {
				best = s.e
			}
		}
		mins = append(mins, best)
		spanSum += win[len(win)-1].t - win[0].t
	}
	trialNS := spanSum / float64(trials)
	if trialNS <= 0 {
		return nil
	}
	p, lo, hi := metrics.SuccessProbabilityCI(mins, target, tol, 0)
	est := &TTSEstimate{
		TargetEnergy: target,
		Tol:          tol,
		Confidence:   r.cfg.Confidence,
		TrialNS:      trialNS,
		Trials:       trials,
		SuccessP:     p,
		PLow:         lo,
		PHigh:        hi,
	}
	q := r.cfg.Confidence
	// Higher success probability means lower TTS, so the interval flips.
	est.TTSNS = sanitizeTTS(metrics.TTS(trialNS, p, q))
	est.TTSLowNS = sanitizeTTS(metrics.TTS(trialNS, hi, q))
	est.TTSHighNS = sanitizeTTS(metrics.TTS(trialNS, lo, q))
	return est
}

// sanitizeTTS maps +Inf (zero successes) to the JSON-safe sentinel -1.
func sanitizeTTS(v float64) float64 {
	if math.IsInf(v, 1) || math.IsNaN(v) {
		return -1
	}
	return v
}

// Snapshot is the JSON view GET /runs/{id}/diag serves.
type Snapshot struct {
	Engine  string  `json:"engine,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
	Epoch   int     `json:"epoch"`
	Chips   int     `json:"chips"`
	ModelNS float64 `json:"modelNS"`
	Samples int     `json:"samples"`

	HasEnergy  bool    `json:"hasEnergy"`
	BestEnergy float64 `json:"bestEnergy,omitempty"`
	LastEnergy float64 `json:"lastEnergy,omitempty"`
	// ImprovementRate is the mean energy decrease per model ns over the
	// plateau window; positive while the solve is still improving.
	ImprovementRate float64 `json:"improvementRate,omitempty"`
	// Plateaued reports that the trajectory improved less than the
	// configured relative epsilon over the configured window.
	Plateaued bool `json:"plateaued"`
	// BestStalenessNS is the model time since best-so-far last improved.
	BestStalenessNS float64 `json:"bestStalenessNS,omitempty"`

	Pairs         []PairDiag  `json:"pairs,omitempty"`
	ChipCoherence []ChipDiag  `json:"chipCoherence,omitempty"`
	Traffic       TrafficDiag `json:"traffic"`
	// TTS is nil until enough trajectory samples accumulated for one
	// trial window.
	TTS *TTSEstimate `json:"tts,omitempty"`
	// QueueWaitNS is wall time the run spent in the admission queue
	// before a worker slot freed up; zero for runs dispatched immediately.
	QueueWaitNS int64 `json:"queueWaitNS,omitempty"`
	// Portfolio is the race view of a portfolio run — one entry per
	// entrant, the winner once the race settles. Nil for every other
	// engine.
	Portfolio *PortfolioDiag `json:"portfolio,omitempty"`
}

// PortfolioDiag is a portfolio run's race as the event stream reports
// it live: identity and phase from the EntrantStart/EntrantEnd events,
// energy envelopes from the entrants' origin-stamped inner streams,
// the winner from PortfolioWin.
type PortfolioDiag struct {
	Entrants []EntrantDiag `json:"entrants"`
	// Winner is the winning entrant index, -1 while the race is live.
	Winner     int    `json:"winner"`
	WinnerKind string `json:"winnerKind,omitempty"`
	// HitTarget reports the race ended first-to-target (vs best-at-end).
	HitTarget bool `json:"hitTarget,omitempty"`
}

// EntrantDiag is one entrant's live view.
type EntrantDiag struct {
	Index int    `json:"index"`
	Kind  string `json:"kind,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	// Phase is "racing" until the entrant's EntrantEnd lands, then
	// "done" (ran to completion) or "cancelled" (lost the race).
	Phase      string  `json:"phase"`
	Events     int     `json:"events"`
	HasEnergy  bool    `json:"hasEnergy"`
	BestEnergy float64 `json:"bestEnergy,omitempty"`
	LastEnergy float64 `json:"lastEnergy,omitempty"`
	Won        bool    `json:"won,omitempty"`
	WallNS     int64   `json:"wallNS,omitempty"`
}

// PairDiag is one directed chip pair's disagreement summary.
type PairDiag struct {
	Observer int `json:"observer"`
	Owner    int `json:"owner"`
	// Disagreement is the latest stale fraction of the owner's slice in
	// the observer's shadow registers; StaleSpins the absolute count.
	Disagreement     float64 `json:"disagreement"`
	StaleSpins       int64   `json:"staleSpins"`
	MeanDisagreement float64 `json:"meanDisagreement"`
	MaxDisagreement  float64 `json:"maxDisagreement"`
	Samples          int     `json:"samples"`
	LastEpoch        int     `json:"lastEpoch"`
}

// ChipDiag aggregates a chip's pair stats: Ignorance is the mean
// disagreement of its shadows about others, Visibility the mean
// disagreement others hold about it, Coherence = 1 − Ignorance.
type ChipDiag struct {
	Chip       int     `json:"chip"`
	Ignorance  float64 `json:"ignorance"`
	Visibility float64 `json:"visibility"`
	Coherence  float64 `json:"coherence"`
}

// TrafficDiag attributes fabric traffic and stall over the run.
type TrafficDiag struct {
	TotalBytes      float64 `json:"totalBytes"`
	BytesPerEpoch   float64 `json:"bytesPerEpoch,omitempty"`
	StallNS         float64 `json:"stallNS"`
	RecoveryStallNS float64 `json:"recoveryStallNS,omitempty"`
	// StallFraction is fabric stall over total elapsed (model + stall).
	StallFraction  float64 `json:"stallFraction,omitempty"`
	SyncBitChanges int64   `json:"syncBitChanges"`
	Epochs         int     `json:"epochs"`
}

// TTSEstimate is the live time-to-solution estimate: trials of TrialNS
// model ns succeed with probability SuccessP (Wilson bounds [PLow,
// PHigh]), inverting into TTS bounds at the configured confidence.
// A TTS of -1 encodes +Inf (no trial succeeded yet).
type TTSEstimate struct {
	TargetEnergy float64 `json:"targetEnergy"`
	Tol          float64 `json:"tol"`
	Confidence   float64 `json:"confidence"`
	TrialNS      float64 `json:"trialNS"`
	Trials       int     `json:"trials"`
	SuccessP     float64 `json:"successP"`
	PLow         float64 `json:"pLow"`
	PHigh        float64 `json:"pHigh"`
	TTSNS        float64 `json:"ttsNS"`
	TTSLowNS     float64 `json:"ttsLowNS"`
	TTSHighNS    float64 `json:"ttsHighNS"`
}
