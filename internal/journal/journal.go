// Package journal is the daemon's durability log: an append-only,
// fsync'd record stream the run manager writes through, replayed on
// restart to reconstruct the run table and resume interrupted work.
//
// Layout: a fixed header line identifying the file and format version,
// then length-prefixed frames
//
//	[4 bytes big-endian payload length]
//	[4 bytes big-endian CRC-32 (IEEE) of the payload]
//	[payload: one JSON-encoded Record]
//
// The frame CRC makes the common crash artifact — a torn final write —
// cleanly detectable: Decode returns every intact record and flags the
// tail as torn instead of failing the whole log. JSON payloads let the
// record schema grow compatibly (new optional fields) without a format
// bump; the header version only changes when the framing itself does.
//
// Durability contract: Append returns only after the frame is written
// AND fsynced, so a record the caller observed as appended survives
// kill -9. Checkpoint payloads do not live in the journal — records
// carry checkpoint.Refs pointing at atomically-written files beside it
// (see checkpoint.WriteRef), keeping the log small and the replay scan
// cheap.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"mbrim/internal/checkpoint"
	"mbrim/internal/obs"
)

// header identifies a journal file. Bump the version only for framing
// changes; record-schema evolution rides on JSON's optional fields.
const header = "mbrim-journal v1\n"

// maxRecord bounds one framed payload, fencing a corrupt length prefix
// from turning into a multi-gigabyte allocation during replay.
const maxRecord = 16 << 20

// Type discriminates journal records.
type Type string

// The record taxonomy. A run's journal life is
// submit → start → checkpoint* → (restart → checkpoint*)* → terminal;
// replay folds the records per run ID and acts on the last state.
const (
	// TypeSubmit records an accepted run: its ID, the client's submit
	// spec (replay rebuilds the request from it), priority and deadline.
	TypeSubmit Type = "submit"
	// TypeStart records dispatch: the run left the queue and is solving.
	TypeStart Type = "start"
	// TypeCheckpoint records a durable checkpoint ref for the run; the
	// last valid one is the resume point after a crash.
	TypeCheckpoint Type = "checkpoint"
	// TypeRestart records a supervised in-place restart (panic
	// isolation) or a replay-driven resume after a daemon restart.
	TypeRestart Type = "restart"
	// TypeTerminal records the final state, error and outcome summary.
	TypeTerminal Type = "terminal"
)

// Scopes partition the ID space: the run manager's table and the
// cluster coordinator's share one journal.
const (
	ScopeRun     = "run"
	ScopeCluster = "cluster"
)

// Record is one journal entry. Only the fields relevant to its Type
// are set; unknown fields from future writers decode into nothing and
// are ignored, unknown Types are preserved for the caller to skip.
type Record struct {
	Type   Type   `json:"type"`
	ID     string `json:"id"`
	Scope  string `json:"scope,omitempty"` // "" means ScopeRun
	WallNS int64  `json:"wallNS,omitempty"`

	// Submit payload.
	Spec           json.RawMessage `json:"spec,omitempty"`
	Priority       int             `json:"priority,omitempty"`
	DeadlineWallNS int64           `json:"deadlineWallNS,omitempty"`

	// Checkpoint payload.
	Checkpoint *checkpoint.Ref `json:"checkpoint,omitempty"`

	// Restart payload.
	Reason string `json:"reason,omitempty"`

	// Terminal payload.
	State   string          `json:"state,omitempty"`
	Error   string          `json:"error,omitempty"`
	Summary json.RawMessage `json:"summary,omitempty"`
}

// Writer appends records durably. Safe for concurrent use; appends are
// serialized so frames never interleave.
type Writer struct {
	reg *obs.Registry

	mu     sync.Mutex
	f      *os.File
	closed bool
}

// Open opens (creating if needed) the journal at path for appending
// and writes the header on a fresh file. reg (may be nil) receives the
// journal_* instruments.
func Open(path string, reg *obs.Registry) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: stat: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(header); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: header sync: %w", err)
		}
	}
	if reg != nil {
		reg.SetHelp("journal.appends_total", "Records durably appended to the run journal.")
		reg.SetHelp("journal.append_errors_total", "Journal append failures (record not durable).")
		reg.SetHelp("journal.bytes_total", "Bytes appended to the run journal, framing included.")
		reg.SetHelp("journal.fsync_ns", "Wall time of journal write+fsync, per append.")
	}
	return &Writer{f: f, reg: reg}, nil
}

// Append frames, writes and fsyncs one record, stamping WallNS if the
// caller left it zero. On return the record is durable.
func (w *Writer) Append(rec Record) error {
	if rec.WallNS == 0 {
		rec.WallNS = time.Now().UnixNano()
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: record %d bytes exceeds the %d limit", len(payload), maxRecord)
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("journal: writer closed")
	}
	start := time.Now()
	if _, err := w.f.Write(frame); err != nil {
		w.reg.Counter("journal.append_errors_total").Inc()
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.reg.Counter("journal.append_errors_total").Inc()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	w.reg.Counter("journal.appends_total").Inc()
	w.reg.Counter("journal.bytes_total").Add(int64(len(frame)))
	w.reg.Histogram("journal.fsync_ns").Observe(float64(time.Since(start).Nanoseconds()))
	return nil
}

// Close syncs and closes the file. Further appends error.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("journal: close sync: %w", err)
	}
	return w.f.Close()
}

// Replayed is the result of scanning a journal.
type Replayed struct {
	Records []Record
	// Torn reports the scan stopped before end-of-file — the expected
	// artifact of a crash mid-append (or tail corruption). Everything
	// in Records is intact; TailErr says why the scan stopped.
	Torn    bool
	TailErr error
}

// Replay scans the journal at path. A missing file is an empty journal
// (fresh state dir), not an error. A torn or corrupt tail yields the
// intact prefix with Torn set; only I/O failures and a wrong header
// are hard errors.
func Replay(path string) (*Replayed, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Replayed{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: open for replay: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// Decode scans a journal stream. It never panics, whatever the bytes:
// an invalid header is an error (wrong file, not a torn one); a
// truncated or CRC-failing tail ends the scan with Torn set and the
// intact prefix in Records. An entirely empty stream is a valid empty
// journal (a crash can land between file creation and the header
// write).
func Decode(r io.Reader) (*Replayed, error) {
	br := bufio.NewReader(r)
	rep := &Replayed{}

	hdr := make([]byte, len(header))
	n, err := io.ReadFull(br, hdr)
	switch {
	case n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF):
		return rep, nil
	case err == io.ErrUnexpectedEOF:
		// A partial header matching the expected prefix is a crash
		// during file creation (torn); anything else is the wrong file.
		if bytes.HasPrefix([]byte(header), hdr[:n]) {
			rep.Torn = true
			rep.TailErr = fmt.Errorf("journal: truncated header (%d of %d bytes)", n, len(header))
			return rep, nil
		}
		return nil, fmt.Errorf("journal: not a journal (header %q)", hdr[:n])
	case err != nil:
		return nil, fmt.Errorf("journal: reading header: %w", err)
	case !bytes.Equal(hdr, []byte(header)):
		return nil, fmt.Errorf("journal: not a journal (header %q)", hdr)
	}

	var fh [8]byte
	for {
		n, err := io.ReadFull(br, fh[:])
		if err == io.EOF {
			return rep, nil
		}
		if err == io.ErrUnexpectedEOF {
			rep.Torn = true
			rep.TailErr = fmt.Errorf("journal: truncated frame header (%d of 8 bytes)", n)
			return rep, nil
		}
		if err != nil {
			return nil, fmt.Errorf("journal: reading frame: %w", err)
		}
		size := binary.BigEndian.Uint32(fh[0:4])
		sum := binary.BigEndian.Uint32(fh[4:8])
		if size > maxRecord {
			rep.Torn = true
			rep.TailErr = fmt.Errorf("journal: frame claims %d bytes (corrupt length)", size)
			return rep, nil
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			rep.Torn = true
			rep.TailErr = fmt.Errorf("journal: truncated payload: %v", err)
			return rep, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			rep.Torn = true
			rep.TailErr = errors.New("journal: payload CRC mismatch")
			return rep, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			rep.Torn = true
			rep.TailErr = fmt.Errorf("journal: payload not a record: %v", err)
			return rep, nil
		}
		rep.Records = append(rep.Records, rec)
	}
}
