package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mbrim/internal/checkpoint"
	"mbrim/internal/obs"
)

func testRecords() []Record {
	return []Record{
		{Type: TypeSubmit, ID: "run-1", WallNS: 10,
			Spec: json.RawMessage(`{"engine":"mbrim","k":64}`), Priority: 3, DeadlineWallNS: 99},
		{Type: TypeStart, ID: "run-1", WallNS: 20},
		{Type: TypeCheckpoint, ID: "run-1", WallNS: 30,
			Checkpoint: &checkpoint.Ref{Name: "run-1.ckpt", Bytes: 128, SHA256: strings.Repeat("ab", 32)}},
		{Type: TypeRestart, ID: "run-1", WallNS: 40, Reason: "panic: boom"},
		{Type: TypeTerminal, ID: "run-1", WallNS: 50, State: "completed",
			Summary: json.RawMessage(`{"energy":-42.5}`)},
		{Type: TypeSubmit, ID: "cr-1", Scope: ScopeCluster, WallNS: 60,
			Spec: json.RawMessage(`{"k":32}`)},
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Open(path, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: TypeStart, ID: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}

	rep, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Fatalf("clean journal reported torn: %v", rep.TailErr)
	}
	if len(rep.Records) != len(want) {
		t.Fatalf("replayed %d records, wrote %d", len(rep.Records), len(want))
	}
	for i, got := range rep.Records {
		wantJSON, _ := json.Marshal(want[i])
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("record %d: got %s, want %s", i, gotJSON, wantJSON)
		}
	}
}

func TestOpenAppendsToExistingJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: TypeSubmit, ID: "run-1", WallNS: 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Reopen — the second writer must append, not truncate or re-header.
	w, err = Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: TypeTerminal, ID: "run-1", WallNS: 2, State: "completed"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 || rep.Torn {
		t.Fatalf("records=%d torn=%v after reopen", len(rep.Records), rep.Torn)
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	rep, err := Replay(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 || rep.Torn {
		t.Fatalf("missing file: %+v", rep)
	}
}

// A torn tail — the signature artifact of kill -9 mid-append — must
// yield every intact record and the Torn flag, at any cut point.
func TestReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range testRecords() {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the last frame begins by replaying and re-encoding.
	rep, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	n := len(rep.Records)
	for cut := len(full) - 1; cut > len(full)-9 && cut > 0; cut-- {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Replay(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !got.Torn {
			t.Fatalf("cut at %d not reported torn", cut)
		}
		if len(got.Records) != n-1 {
			t.Fatalf("cut at %d: %d records, want %d", cut, len(got.Records), n-1)
		}
	}
	// Truncation inside the header.
	if err := os.WriteFile(path, full[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Torn || len(got.Records) != 0 {
		t.Fatalf("header cut: torn=%v records=%d", got.Torn, len(got.Records))
	}
	// Zero bytes (crash between create and header write) is a valid
	// empty journal.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Torn || len(got.Records) != 0 {
		t.Fatalf("empty file: torn=%v records=%d", got.Torn, len(got.Records))
	}
}

func TestReplayDetectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range testRecords() {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40 // inside the last payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn {
		t.Fatal("bit flip not detected")
	}
	if len(rep.Records) != len(testRecords())-1 {
		t.Fatalf("%d records survived, want %d", len(rep.Records), len(testRecords())-1)
	}
}

func TestDecodeRejectsForeignFile(t *testing.T) {
	if _, err := Decode(strings.NewReader("GIF89a definitely not a journal")); err == nil {
		t.Fatal("foreign header accepted")
	}
}
