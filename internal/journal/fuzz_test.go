package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the journal scanner. The
// contract under fuzzing: never panic, never allocate unboundedly
// (maxRecord fences length prefixes), and classify every input as
// valid records, a torn tail, or a hard error — quietly returning
// garbage records is fine only if their frames checksum correctly,
// which for random bytes is vanishingly rare.
func FuzzDecode(f *testing.F) {
	// Seed corpus: a real journal, its torn variants, and near-misses.
	path := filepath.Join(f.TempDir(), "seed.journal")
	w, err := Open(path, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, rec := range testRecords() {
		if err := w.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:len(header)+3])
	f.Add([]byte(header))
	f.Add([]byte{})
	f.Add([]byte("mbrim-journal v9\n"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // hard errors are a legal outcome; panics are not
		}
		if rep == nil {
			t.Fatal("nil result without error")
		}
		if rep.Torn && rep.TailErr == nil {
			t.Fatal("torn without a tail error")
		}
	})
}
