package portfolio

import (
	"fmt"
	"testing"

	"mbrim/internal/core"
	"mbrim/internal/embed"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
)

// BenchmarkRace is the A/B behind BENCH_portfolio.json: for each
// problem structure, the a-posteriori best solo engine (the thing a
// clairvoyant caller would have run) against the heterogeneous race
// with the target fixed at that engine's deterministic final energy.
// The race's winner reproduces the solo trajectory seed for seed, so
// the delta is pure racing overhead: the losers' burnt core time until
// the crossing cancels them, plus the fan-out/merge machinery. On a
// 1-vCPU host the entrants time-slice one core, which makes this the
// worst case — with one core per entrant the overhead is the merge
// alone.
func BenchmarkRace(b *testing.B) {
	dense := graph.Complete(64, rng.New(3)).ToIsing()
	logical := graph.Complete(16, rng.New(4)).ToIsing()
	sparse := embed.CompleteOnChimera(logical, 4, 0).Physical

	for _, prob := range []struct {
		name string
		m    *ising.Model
		solo core.Kind
	}{
		{"dense-K64", dense, core.DSBM},
		{"chimera-K16", sparse, core.Tabu},
	} {
		base := core.Request{Model: prob.m, Seed: 3, Sweeps: 200, Steps: 2000, Runs: 1}

		soloReq := base
		soloReq.Kind = prob.solo
		ref, err := core.Solve(soloReq)
		if err != nil {
			b.Fatal(err)
		}
		target := ref.Energy

		b.Run(fmt.Sprintf("%s/solo-%s", prob.name, prob.solo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(soloReq); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(prob.name+"/race", func(b *testing.B) {
			req := base
			req.Kind = core.Portfolio
			req.Portfolio = core.PortfolioSpec{TargetEnergy: &target}
			for i := 0; i < b.N; i++ {
				out, err := core.Solve(req)
				if err != nil {
					b.Fatal(err)
				}
				if out.Energy > target {
					b.Fatalf("race missed the target: %v > %v", out.Energy, target)
				}
			}
		})
	}
}
