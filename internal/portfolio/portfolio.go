// Package portfolio implements the heterogeneous portfolio engine
// (HETRI-style): it races several registered engines on the same model
// under a shared context, cancels the losers the moment one entrant
// reaches the target energy (or when the race budget expires), merges
// the entrants' ledgers, and optionally hands the race's best state to
// a second-stage engine as a warm start through the checkpoint layer.
//
// The engine registers itself as "portfolio" in the core registry, so
// it is selected like any other solver — `-solver portfolio` on the
// CLI, `"engine": "portfolio"` on POST /runs — and composes the
// repository's existing machinery rather than duplicating it: entrant
// cancellation is core's context plumbing, hand-off is a
// checkpoint.Warm envelope, and the structure dispatcher reads the
// lattice backend's row statistics.
//
// Linking: this package must be imported (usually blank) for the
// engine to exist. The facade, the daemon and the CLI all do; plain
// core-only test binaries deliberately do not, which keeps the
// trajectory-neutrality golden scoped to the primitive engines.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"mbrim/internal/checkpoint"
	"mbrim/internal/core"
	"mbrim/internal/obs"
)

// MaxEntrants is the hard cap on race width: each entrant is a full
// solver on its own goroutine, so an unbounded field is a resource
// hazard, not a capability.
const MaxEntrants = 8

// DefaultDispatchEntrants is how many entrants the structure
// dispatcher fields when the spec does not say.
const DefaultDispatchEntrants = 3

type engine struct{}

func init() { core.Register(engine{}) }

func (engine) Kind() core.Kind { return core.Portfolio }

func (engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		// Backend/Traced/ModelTime are pass-through: entrants honor the
		// request's backend, and the winner's trace and model time (when
		// its engine produces them) become the portfolio's.
		Backend:     true,
		Traced:      true,
		ModelTime:   true,
		Description: "heterogeneous race: N engines on one model, losers cancelled at first-to-target, optional warm-start hand-off",
	}
}

// raceState is the shared first-to-target latch. The first entrant
// whose energy stream crosses the target wins and cancels the race;
// everyone else sees a cancelled context at their next boundary.
type raceState struct {
	mu        sync.Mutex
	hasTarget bool
	target    float64
	crossed   int // winning entrant index, -1 until someone crosses
	cancel    context.CancelFunc
}

func (st *raceState) cross(idx int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.crossed >= 0 {
		return
	}
	st.crossed = idx
	st.cancel()
}

func (st *raceState) winner() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.crossed
}

// entrantTracer watches one entrant's event stream for a target
// crossing and forwards everything to the entrant's stamped sink. It
// is the race's only observation point: engines that emit EnergySample
// (sa per sweep, sbm on its sample cadence, brim/multichip at
// SampleEveryNS, dnc per pass) lose mid-run; engines that emit nothing
// until RunEnd (tabu, pt) are judged at completion.
type entrantTracer struct {
	st    *raceState
	idx   int
	inner obs.Tracer // stamped sink; may be nil
}

func (t *entrantTracer) Emit(e obs.Event) {
	if t.inner != nil {
		t.inner.Emit(e)
	}
	if !t.st.hasTarget {
		return
	}
	if (e.Kind == obs.EnergySample || e.Kind == obs.RunEnd) && e.Value <= t.st.target {
		t.st.cross(t.idx)
	}
}

// entrantResult is one entrant's side of the race after its goroutine
// returns.
type entrantResult struct {
	kind        string
	best        *core.Outcome // completed outcome or interrupt's best-so-far; nil if nothing usable
	err         error         // non-interrupt failure
	interrupted bool
	wall        time.Duration
}

func (engine) Solve(ctx context.Context, r *core.Request) (*core.Outcome, error) {
	spec := r.Portfolio
	report := &core.PortfolioReport{Winner: -1}
	entrants := spec.Entrants
	if len(entrants) == 0 {
		stats := Analyze(r.Model)
		entrants = Dispatch(stats, spec.MaxEntrants)
		report.Dispatched = true
		report.Structure = &stats
	}
	if err := validateEntrants(entrants, spec.HandOff); err != nil {
		return nil, err
	}

	out := r.NewOutcome()
	start := time.Now()

	raceCtx, cancel := context.WithCancel(ctx)
	if spec.BudgetMS > 0 {
		raceCtx, cancel = context.WithTimeout(ctx, time.Duration(spec.BudgetMS*float64(time.Millisecond)))
	}
	defer cancel()
	st := &raceState{crossed: -1, cancel: cancel}
	if spec.TargetEnergy != nil {
		st.hasTarget, st.target = true, *spec.TargetEnergy
	}

	results := make([]entrantResult, len(entrants))
	var wg sync.WaitGroup
	for i, ent := range entrants {
		ereq := entrantRequest(r, ent, i, st)
		if r.Tracer != nil {
			r.Tracer.Emit(obs.Event{Kind: obs.EntrantStart, Label: ent.Kind,
				Chip: i, Seed: ereq.Seed})
		}
		wg.Add(1)
		go func(i int, ereq core.Request) {
			defer wg.Done()
			t0 := time.Now()
			eout, eerr := core.SolveCtx(raceCtx, ereq)
			res := entrantResult{kind: string(ereq.Kind), wall: time.Since(t0)}
			var ie *core.InterruptedError
			switch {
			case eerr == nil:
				res.best = eout
				// An entrant can finish under target without ever
				// emitting a sample (tabu, pt): judge it here.
				if st.hasTarget && eout.Energy <= st.target {
					st.cross(i)
				}
			case errors.As(eerr, &ie):
				res.interrupted = true
				if ie.Outcome != nil && ie.Outcome.Spins != nil {
					res.best = ie.Outcome
				}
			default:
				res.err = eerr
			}
			results[i] = res
			if r.Tracer != nil {
				var interrupted int64
				if res.interrupted {
					interrupted = 1
				}
				var energy float64
				if res.best != nil {
					energy = res.best.Energy
				}
				r.Tracer.Emit(obs.Event{Kind: obs.EntrantEnd, Label: res.kind,
					Chip: i, Value: energy, Count: interrupted,
					WallDurNS: res.wall.Nanoseconds()})
			}
		}(i, ereq)
	}
	wg.Wait()

	// Winner: the first entrant to cross the target if anyone did,
	// otherwise the best final energy (ties to the lowest index).
	winner := st.winner()
	if winner >= 0 && results[winner].best == nil {
		winner = -1 // crossed per the stream but died before reporting state
	}
	if winner >= 0 {
		report.HitTarget = true
	} else {
		bestE := math.Inf(1)
		for i := range results {
			if results[i].best != nil && results[i].best.Energy < bestE {
				bestE, winner = results[i].best.Energy, i
			}
		}
	}
	if winner < 0 {
		for i := range results {
			if results[i].err != nil {
				return nil, fmt.Errorf("portfolio: every entrant failed; first error (%s): %w",
					results[i].kind, results[i].err)
			}
		}
		return nil, fmt.Errorf("portfolio: no entrant produced a state")
	}

	// Merge the ledgers: per-stat sums across entrants (each entrant's
	// Stats keys are engine-scoped counters, so summing is the honest
	// aggregate), winner's trace/model time as the portfolio's own.
	var interruptedCount float64
	for i := range results {
		res := &results[i]
		rep := core.EntrantReport{Index: i, Kind: res.kind,
			WallNS: res.wall.Nanoseconds(), Interrupted: res.interrupted}
		if res.interrupted {
			interruptedCount++
		}
		if res.err != nil {
			rep.Err = res.err.Error()
			rep.Energy = math.Inf(1)
		}
		if res.best != nil {
			rep.Energy = res.best.Energy
			rep.Cut = res.best.Cut
			rep.ModelNS = res.best.ModelNS
			if st.hasTarget && res.best.Energy <= st.target {
				rep.HitTarget = true
			}
			for k, v := range res.best.Stats {
				out.Stats[k] += v
			}
		}
		report.Entrants = append(report.Entrants, rep)
	}
	win := results[winner].best
	report.Winner = winner
	report.WinnerKind = results[winner].kind
	out.Spins = append([]int8(nil), win.Spins...)
	out.Energy = win.Energy
	out.ModelNS = win.ModelNS
	out.Trace = win.Trace
	out.Stats["entrants"] = float64(len(entrants))
	out.Stats["entrantsInterrupted"] = interruptedCount
	out.Stats["winner"] = float64(winner)
	out.Portfolio = report

	if r.Tracer != nil {
		var hit int64
		if report.HitTarget {
			hit = 1
		}
		r.Tracer.Emit(obs.Event{Kind: obs.PortfolioWin, Label: report.WinnerKind,
			Chip: winner, Value: out.Energy, Count: hit})
	}

	// A cancelled *parent* context means the caller interrupted the
	// whole portfolio: honor the SolveCtx contract. A race-internal
	// cancellation (target crossing, budget expiry) is a normal finish.
	if ctx.Err() != nil {
		return r.Interrupted(out, start, ctx.Err(), nil)
	}

	if spec.HandOff != nil {
		if err := runHandOff(ctx, r, spec, report, out, st); err != nil {
			return nil, err
		}
	}

	r.Finish(out, start)
	return out, nil
}

// runHandOff converts the race's best state into a warm-start envelope
// through the checkpoint layer and runs the second-stage entrant from
// it, adopting the polish when it improves (a correct polisher never
// regresses, but a crashed one must not eat the race result).
func runHandOff(ctx context.Context, r *core.Request, spec core.PortfolioSpec,
	report *core.PortfolioReport, out *core.Outcome, st *raceState) error {
	warm, err := checkpoint.EncodeWarm(report.WinnerKind, r.Seed, r.Model, out.Spins, out.Energy)
	if err != nil {
		return fmt.Errorf("portfolio: hand-off encode: %w", err)
	}
	idx := len(report.Entrants)
	hreq := entrantRequest(r, *spec.HandOff, idx, nil)
	hreq.Resume = warm
	if r.Tracer != nil {
		hreq.Tracer = obs.StampTracer(r.Tracer, 0, fmt.Sprintf("e%d", idx))
		r.Tracer.Emit(obs.Event{Kind: obs.EntrantStart, Label: spec.HandOff.Kind,
			Chip: idx, Seed: hreq.Seed})
	}
	t0 := time.Now()
	hout, herr := core.SolveCtx(ctx, hreq)
	rep := core.EntrantReport{Index: idx, Kind: spec.HandOff.Kind,
		WallNS: time.Since(t0).Nanoseconds()}
	var ie *core.InterruptedError
	switch {
	case herr == nil:
		rep.Energy, rep.Cut, rep.ModelNS = hout.Energy, hout.Cut, hout.ModelNS
	case errors.As(herr, &ie) && ie.Outcome != nil && ie.Outcome.Spins != nil:
		rep.Interrupted = true
		hout = ie.Outcome
		rep.Energy, rep.Cut, rep.ModelNS = hout.Energy, hout.Cut, hout.ModelNS
	default:
		rep.Err = herr.Error()
		rep.Energy = math.Inf(1)
		hout = nil
	}
	if st.hasTarget && hout != nil && hout.Energy <= st.target {
		rep.HitTarget = true
	}
	report.HandOff = &rep
	if hout != nil && hout.Energy <= out.Energy {
		out.Spins = append([]int8(nil), hout.Spins...)
		out.Energy = hout.Energy
		out.ModelNS += hout.ModelNS
		out.Stats["handoffImproved"] = 1
		for k, v := range hout.Stats {
			out.Stats[k] += v
		}
	}
	if r.Tracer != nil {
		var interrupted int64
		if rep.Interrupted {
			interrupted = 1
		}
		r.Tracer.Emit(obs.Event{Kind: obs.EntrantEnd, Label: rep.Kind,
			Chip: idx, Value: rep.Energy, Count: interrupted,
			WallDurNS: rep.WallNS})
	}
	return nil
}

// entrantRequest derives one entrant's request from the portfolio's:
// same model, same backend policy, same observability sinks (stamped
// with the entrant's origin), with the entrant's overrides applied.
// st == nil builds a hand-off request (no race watcher).
func entrantRequest(r *core.Request, ent core.PortfolioEntrant, idx int, st *raceState) core.Request {
	req := *r
	req.Kind = core.Kind(ent.Kind)
	req.Seed = r.Seed + ent.SeedOffset
	req.Portfolio = core.PortfolioSpec{}
	req.Resume = nil
	if ent.Runs > 0 {
		req.Runs = ent.Runs
	}
	if ent.Sweeps > 0 {
		req.Sweeps = ent.Sweeps
	}
	if ent.Steps > 0 {
		req.Steps = ent.Steps
	}
	if ent.DurationNS > 0 {
		req.DurationNS = ent.DurationNS
	}
	if ent.Chips > 0 {
		req.Chips = ent.Chips
	}
	if st != nil {
		// Every entrant gets the watcher even with no user tracer — it
		// is the first-to-target observation point. Origin-stamping
		// ("e0", "e1", …) keeps the entrants' inner streams separable
		// downstream (runs.Progress, diag, SSE).
		req.Tracer = &entrantTracer{st: st, idx: idx,
			inner: obs.StampTracer(r.Tracer, 0, fmt.Sprintf("e%d", idx))}
	}
	return req
}

// ValidateSpec checks a portfolio spec the way Solve will, for callers
// (the HTTP submit path, the CLI) that want to reject a malformed race
// up front instead of discovering it as a failed run. An empty entrant
// list is valid here — it means auto-dispatch — so only named entrants
// and the hand-off stage are checked.
func ValidateSpec(spec core.PortfolioSpec) error {
	if len(spec.Entrants) > 0 {
		return validateEntrants(spec.Entrants, spec.HandOff)
	}
	return validateHandOff(spec.HandOff)
}

// validateEntrants rejects malformed race fields before any goroutine
// launches: unknown engine kinds (with the registry's did-you-mean
// error), nested portfolios, oversized fields, and hand-off targets
// that cannot accept a warm start.
func validateEntrants(entrants []core.PortfolioEntrant, handOff *core.PortfolioEntrant) error {
	if len(entrants) == 0 {
		return fmt.Errorf("portfolio: no entrants")
	}
	if len(entrants) > MaxEntrants {
		return fmt.Errorf("portfolio: %d entrants exceeds the cap of %d", len(entrants), MaxEntrants)
	}
	for i, ent := range entrants {
		k, err := core.ParseKind(ent.Kind)
		if err != nil {
			return fmt.Errorf("portfolio: entrant %d: %w", i, err)
		}
		if k == core.Portfolio {
			return fmt.Errorf("portfolio: entrant %d: portfolios do not nest", i)
		}
	}
	return validateHandOff(handOff)
}

// validateHandOff checks the optional second-stage entrant: it must be
// a registered engine with the WarmStart capability, since the hand-off
// arrives as a checkpoint.Warm envelope in Request.Resume.
func validateHandOff(handOff *core.PortfolioEntrant) error {
	if handOff == nil {
		return nil
	}
	k, err := core.ParseKind(handOff.Kind)
	if err != nil {
		return fmt.Errorf("portfolio: hand-off: %w", err)
	}
	caps, _ := core.EngineCaps(k)
	if !caps.WarmStart {
		return fmt.Errorf("portfolio: hand-off engine %s cannot accept a warm start (have %s)",
			k, warmStartKinds())
	}
	return nil
}

// warmStartKinds lists the registered engines with the WarmStart
// capability, for error messages.
func warmStartKinds() string {
	s := ""
	for _, info := range core.Engines() {
		if !info.Capabilities.WarmStart {
			continue
		}
		if s != "" {
			s += ", "
		}
		s += string(info.Kind)
	}
	return s
}
