package portfolio

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mbrim/internal/core"
	"mbrim/internal/graph"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
)

func testProblem(n int, seed uint64) (*graph.Graph, core.Request) {
	g := graph.Complete(n, rng.New(seed))
	return g, core.Request{Kind: core.Portfolio, Model: g.ToIsing(), Graph: g, Seed: seed}
}

// collector gathers the emitted event stream for assertions.
type collector struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *collector) Emit(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collector) snapshot() []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Event(nil), c.events...)
}

// TestRaceFirstToTarget pins the core HETRI mechanic: a fast entrant
// reaches the target and the slow loser is cancelled mid-run,
// reporting Interrupted.
func TestRaceFirstToTarget(t *testing.T) {
	// Reference solve fixes the target the fast entrant will hit.
	g, _ := testProblem(36, 1)
	ref, err := core.SolveCtx(context.Background(), core.Request{
		Kind: core.SA, Model: g.ToIsing(), Graph: g, Seed: 1, Sweeps: 5, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := ref.Energy

	_, req := testProblem(36, 1)
	tr := &collector{}
	req.Tracer = tr
	req.Portfolio = core.PortfolioSpec{
		TargetEnergy: &target,
		Entrants: []core.PortfolioEntrant{
			{Kind: "sa", Sweeps: 5, Runs: 1},
			// pt emits no mid-run samples and cannot finish this much
			// work before the winner crosses: it must lose by cancel.
			{Kind: "pt", Sweeps: 2_000_000},
		},
	}
	out, err := core.SolveCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	p := out.Portfolio
	if p == nil {
		t.Fatal("no portfolio report")
	}
	if p.Winner != 0 || p.WinnerKind != "sa" {
		t.Fatalf("winner = %d (%s), want 0 (sa)", p.Winner, p.WinnerKind)
	}
	if !p.HitTarget {
		t.Fatal("race must report first-to-target")
	}
	if out.Energy > target {
		t.Fatalf("outcome energy %v above the target %v", out.Energy, target)
	}
	if len(p.Entrants) != 2 {
		t.Fatalf("%d entrant reports", len(p.Entrants))
	}
	// Crossing the target cancels the whole race — the winner included,
	// if it was still mid-run. The loser must always be cancelled.
	if !p.Entrants[1].Interrupted {
		t.Fatal("loser must be cancelled and report interrupted")
	}
	if !p.Entrants[0].HitTarget {
		t.Fatal("winner's report must mark the target hit")
	}
	if out.Stats["entrants"] != 2 || out.Stats["winner"] != 0 {
		t.Fatalf("ledger stats: %v", out.Stats)
	}
	if len(out.Spins) != 36 {
		t.Fatalf("spins length %d", len(out.Spins))
	}

	// Event attribution: entrant lifecycle on the top-level stream, a
	// win event naming the winner, inner streams origin-stamped.
	events := tr.snapshot()
	var starts, ends, wins int
	origins := map[string]bool{}
	for _, e := range events {
		switch e.Kind {
		case obs.EntrantStart:
			starts++
		case obs.EntrantEnd:
			ends++
		case obs.PortfolioWin:
			wins++
			if e.Label != "sa" || e.Chip != 0 || e.Count != 1 {
				t.Fatalf("win event: %+v", e)
			}
		}
		if e.Origin != "" {
			origins[e.Origin] = true
		}
	}
	if starts != 2 || ends != 2 || wins != 1 {
		t.Fatalf("starts=%d ends=%d wins=%d", starts, ends, wins)
	}
	if !origins["e0"] {
		t.Fatalf("winner's inner stream not origin-stamped: %v", origins)
	}
}

// TestRaceBudgetExpiry: with no target and a budget, the race ends at
// the deadline, every entrant reports interrupted, and the best
// best-so-far state wins — a normal finish, not an error.
func TestRaceBudgetExpiry(t *testing.T) {
	_, req := testProblem(48, 3)
	req.Portfolio = core.PortfolioSpec{
		BudgetMS: 50,
		Entrants: []core.PortfolioEntrant{
			{Kind: "sa", Sweeps: 5_000_000},
			{Kind: "sa", Sweeps: 5_000_000, SeedOffset: 1},
		},
	}
	start := time.Now()
	out, err := core.SolveCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("budget did not bound the race: %v", wall)
	}
	p := out.Portfolio
	if p.HitTarget {
		t.Fatal("no target was set")
	}
	for i, e := range p.Entrants {
		if !e.Interrupted {
			t.Fatalf("entrant %d not interrupted at budget expiry", i)
		}
	}
	best := p.Entrants[0].Energy
	if p.Entrants[1].Energy < best {
		best = p.Entrants[1].Energy
	}
	if out.Energy != best {
		t.Fatalf("winner energy %v, want the field's best %v", out.Energy, best)
	}
}

// TestRaceToCompletion: no target, no budget — everyone finishes and
// the lowest final energy wins deterministically.
func TestRaceToCompletion(t *testing.T) {
	_, req := testProblem(24, 2)
	req.Portfolio = core.PortfolioSpec{
		Entrants: []core.PortfolioEntrant{
			{Kind: "sa", Sweeps: 20, Runs: 1},
			{Kind: "tabu", Sweeps: 20},
		},
	}
	out, err := core.SolveCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	p := out.Portfolio
	for i, e := range p.Entrants {
		if e.Interrupted {
			t.Fatalf("entrant %d interrupted in an unbounded race", i)
		}
	}
	want := p.Entrants[0].Energy
	wantIdx := 0
	if p.Entrants[1].Energy < want {
		want, wantIdx = p.Entrants[1].Energy, 1
	}
	if p.Winner != wantIdx || out.Energy != want {
		t.Fatalf("winner %d energy %v, want %d at %v", p.Winner, out.Energy, wantIdx, want)
	}
}

// TestParentCancellation: cancelling the caller's context interrupts
// the whole portfolio per the SolveCtx contract.
func TestParentCancellation(t *testing.T) {
	_, req := testProblem(48, 5)
	req.Portfolio = core.PortfolioSpec{
		Entrants: []core.PortfolioEntrant{
			{Kind: "sa", Sweeps: 5_000_000},
			{Kind: "tabu", Sweeps: 5_000_000},
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := core.SolveCtx(ctx, req)
	var ie *core.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InterruptedError, got %v", err)
	}
	if ie.Outcome == nil || ie.Outcome.Spins == nil {
		t.Fatal("interrupt must carry the best-so-far state")
	}
	if ie.Outcome.Portfolio == nil {
		t.Fatal("interrupt must carry the race report")
	}
}

// TestHandOff: the race's best state flows into the second stage as a
// warm start; the adopted result never regresses.
func TestHandOff(t *testing.T) {
	_, req := testProblem(32, 4)
	tr := &collector{}
	req.Tracer = tr
	req.Portfolio = core.PortfolioSpec{
		Entrants: []core.PortfolioEntrant{
			{Kind: "sa", Sweeps: 10, Runs: 1},
			{Kind: "tabu", Sweeps: 10},
		},
		HandOff: &core.PortfolioEntrant{Kind: "sa", Sweeps: 50, Runs: 1},
	}
	out, err := core.SolveCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	p := out.Portfolio
	if p.HandOff == nil {
		t.Fatal("no hand-off report")
	}
	raceBest := p.Entrants[p.Winner].Energy
	if out.Energy > raceBest {
		t.Fatalf("hand-off regressed the outcome: %v > %v", out.Energy, raceBest)
	}
	if p.HandOff.Kind != "sa" || p.HandOff.Index != len(p.Entrants) {
		t.Fatalf("hand-off report: %+v", p.HandOff)
	}
	// The hand-off stage gets the next entrant origin.
	sawHandOffStart := false
	for _, e := range tr.snapshot() {
		if e.Kind == obs.EntrantStart && e.Chip == len(p.Entrants) {
			sawHandOffStart = true
		}
	}
	if !sawHandOffStart {
		t.Fatal("hand-off stage emitted no EntrantStart")
	}
}

// TestAutoDispatch: with no entrants named, the structure dispatcher
// fields the race and the report says so.
func TestAutoDispatch(t *testing.T) {
	_, req := testProblem(24, 6)
	req.Portfolio = core.PortfolioSpec{MaxEntrants: 2}
	req.Sweeps = 10
	req.Steps = 50
	req.DurationNS = 20
	out, err := core.SolveCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	p := out.Portfolio
	if !p.Dispatched || p.Structure == nil {
		t.Fatal("auto-dispatch not reported")
	}
	if len(p.Entrants) != 2 {
		t.Fatalf("MaxEntrants not honored: %d entrants", len(p.Entrants))
	}
	if p.Structure.Density < denseThreshold {
		t.Fatalf("K-graph analyzed as sparse: %+v", p.Structure)
	}
}

func TestDispatchRules(t *testing.T) {
	// Dense: the K-graph regime.
	g := graph.Complete(32, rng.New(1))
	ents := Dispatch(Analyze(g.ToIsing()), 0)
	if len(ents) != DefaultDispatchEntrants || ents[0].Kind != string(core.DSBM) {
		t.Fatalf("dense field: %+v", ents)
	}

	// Sparse regular: a ring. Degree CV is 0.
	ring := graph.New(100)
	for i := 0; i < 100; i++ {
		ring.AddEdge(i, (i+1)%100, 1)
	}
	stats := Analyze(ring.ToIsing())
	if stats.Density >= denseThreshold || stats.DegreeCV >= irregularCV {
		t.Fatalf("ring stats: %+v", stats)
	}
	ents = Dispatch(stats, 0)
	if ents[0].Kind != string(core.BRIM) {
		t.Fatalf("sparse-regular field: %+v", ents)
	}

	// Sparse irregular: a star — one hub, heavy-tailed degrees.
	star := graph.New(100)
	for i := 1; i < 100; i++ {
		star.AddEdge(0, i, 1)
	}
	stats = Analyze(star.ToIsing())
	if stats.DegreeCV < irregularCV {
		t.Fatalf("star not irregular: %+v", stats)
	}
	ents = Dispatch(stats, 0)
	if ents[0].Kind != string(core.Tabu) {
		t.Fatalf("sparse-irregular field: %+v", ents)
	}

	// The cap binds.
	if got := Dispatch(Analyze(g.ToIsing()), 1); len(got) != 1 {
		t.Fatalf("cap ignored: %+v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	_, req := testProblem(16, 1)

	cases := []struct {
		name string
		spec core.PortfolioSpec
		want string
	}{
		{"unknown kind", core.PortfolioSpec{Entrants: []core.PortfolioEntrant{{Kind: "taboo"}}},
			"did you mean"},
		{"nested portfolio", core.PortfolioSpec{Entrants: []core.PortfolioEntrant{{Kind: "portfolio"}}},
			"do not nest"},
		{"over cap", core.PortfolioSpec{Entrants: make([]core.PortfolioEntrant, MaxEntrants+1)},
			"exceeds the cap"},
		{"hand-off no warm start", core.PortfolioSpec{
			Entrants: []core.PortfolioEntrant{{Kind: "sa"}},
			HandOff:  &core.PortfolioEntrant{Kind: "pt"}},
			"warm start"},
	}
	for _, c := range cases {
		spec := c.spec
		for i := range spec.Entrants {
			if spec.Entrants[i].Kind == "" {
				spec.Entrants[i].Kind = "sa"
			}
		}
		req.Portfolio = spec
		_, err := core.SolveCtx(context.Background(), req)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %v, want substring %q", c.name, err, c.want)
		}
		if verr := ValidateSpec(spec); verr == nil || !strings.Contains(verr.Error(), c.want) {
			t.Fatalf("%s: ValidateSpec %v, want substring %q", c.name, verr, c.want)
		}
	}

	// ValidateSpec accepts the auto-dispatch spec but still vets the
	// hand-off stage.
	if err := ValidateSpec(core.PortfolioSpec{}); err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
	if err := ValidateSpec(core.PortfolioSpec{HandOff: &core.PortfolioEntrant{Kind: "pt"}}); err == nil {
		t.Fatal("auto-dispatch spec with a bad hand-off accepted")
	}
}

// TestWinnerAttributionDeterministic pins that a target-free race of
// deterministic entrants yields a deterministic winner and energy.
func TestWinnerAttributionDeterministic(t *testing.T) {
	run := func() (int, float64) {
		_, req := testProblem(24, 7)
		req.Portfolio = core.PortfolioSpec{
			Entrants: []core.PortfolioEntrant{
				{Kind: "sa", Sweeps: 15, Runs: 1},
				{Kind: "tabu", Sweeps: 15},
				{Kind: "dsbm", Steps: 60},
			},
		}
		out, err := core.SolveCtx(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return out.Portfolio.Winner, out.Energy
	}
	w1, e1 := run()
	w2, e2 := run()
	if w1 != w2 || e1 != e2 {
		t.Fatalf("unbounded race not deterministic: (%d, %v) vs (%d, %v)", w1, e1, w2, e2)
	}
}
