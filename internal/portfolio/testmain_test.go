package portfolio

import (
	"flag"
	"os"
	"testing"

	"mbrim/internal/hostinfo"
)

// TestMain stamps benchmark captures with the host context (the
// host_info record the BENCH_*.json files embed); it is silent for
// plain test runs.
func TestMain(m *testing.M) {
	flag.Parse()
	hostinfo.BenchBanner()
	os.Exit(m.Run())
}
