package portfolio

import (
	"math"

	"mbrim/internal/core"
	"mbrim/internal/ising"
	"mbrim/internal/lattice"
)

// This file is the structure-based dispatcher: when the caller does
// not name entrants, the portfolio reads the model's row statistics
// off the lattice backend and fields engines known to suit that shape
// (the Snowball-style structure-sensitivity argument — see PAPERS.md
// and DESIGN §15 for the rule table and its rationale).

// Density above which a problem counts as dense (K-graph-like). Well
// above lattice.AutoCSRDensity (5%), which is a storage threshold, not
// a structure one.
const denseThreshold = 0.15

// Degree-CV above which a sparse problem counts as irregular — minor
// embeddings and hub-and-spoke structures have heavy-tailed degree
// distributions, while grids/chimera cells sit near zero.
const irregularCV = 0.5

// Analyze computes the dispatcher's row statistics from the model's
// coupling structure, via the lattice backend's row scan (Auto picks
// CSR for sparse problems, so this is O(nnz), not O(n²), where it
// matters).
func Analyze(m *ising.Model) core.StructureStats {
	n := m.N()
	coup := lattice.FromDense(n, m.Couplings(), lattice.Auto, 0)
	stats := core.StructureStats{N: n, NNZ: coup.NNZ()}
	if n == 0 {
		return stats
	}
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		d := float64(coup.RowNNZ(i))
		sum += d
		sumSq += d * d
		if coup.RowNNZ(i) > stats.MaxDegree {
			stats.MaxDegree = coup.RowNNZ(i)
		}
	}
	stats.MeanDegree = sum / float64(n)
	if n > 1 {
		stats.Density = float64(stats.NNZ) / float64(n*(n-1))
	}
	if stats.MeanDegree > 0 {
		variance := sumSq/float64(n) - stats.MeanDegree*stats.MeanDegree
		if variance < 0 {
			variance = 0
		}
		stats.DegreeCV = math.Sqrt(variance) / stats.MeanDegree
	}
	return stats
}

// Dispatch picks a race field from structure statistics. The rules:
//
//   - Dense (density ≥ 15%, the paper's K-graph regime): bifurcation
//     dynamics and annealing shine on all-to-all couplings — dSBM, SA,
//     BRIM.
//   - Sparse and irregular (degree CV ≥ 0.5 — embeddings, hubs): local
//     moves with memory beat dynamics that equilibrate hubs slowly —
//     tabu, SA, and the divide-and-conquer hybrid that exploits the
//     cut structure.
//   - Sparse and regular (grids, chimera cells): the analog dynamics
//     propagate well — BRIM, SA, tabu.
//
// SA appears in every field: it is the robust generalist, and the race
// makes the specialist-vs-generalist bet cheap to hedge. max caps the
// field (default DefaultDispatchEntrants).
func Dispatch(stats core.StructureStats, max int) []core.PortfolioEntrant {
	if max <= 0 {
		max = DefaultDispatchEntrants
	}
	if max > MaxEntrants {
		max = MaxEntrants
	}
	var kinds []core.Kind
	switch {
	case stats.Density >= denseThreshold:
		kinds = []core.Kind{core.DSBM, core.SA, core.BRIM}
	case stats.DegreeCV >= irregularCV:
		kinds = []core.Kind{core.Tabu, core.SA, core.OursDnc}
	default:
		kinds = []core.Kind{core.BRIM, core.SA, core.Tabu}
	}
	if len(kinds) > max {
		kinds = kinds[:max]
	}
	entrants := make([]core.PortfolioEntrant, len(kinds))
	for i, k := range kinds {
		entrants[i] = core.PortfolioEntrant{Kind: string(k)}
	}
	return entrants
}
