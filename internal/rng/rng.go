// Package rng provides small, fast, deterministic pseudo-random number
// generators with explicit state.
//
// The multiprocessor architecture in the paper (Sec 5.4.2) relies on
// every chip holding a replica of the same PRNG so that stochastically
// induced spin flips can be applied everywhere without any
// communication. That requires generators that are (a) deterministic
// for a given seed, (b) cheaply cloneable so replicas can be handed to
// each chip, and (c) forkable so independent subsystems (solvers, job
// initializers, workload generators) do not share a stream by accident.
//
// The core generator is xoshiro256**, seeded through splitmix64, the
// combination recommended by the xoshiro authors. It is not
// cryptographically secure; it is a simulation PRNG.
package rng

import "math"

// splitmix64 advances a 64-bit state and returns the next output.
// It is used for seeding and for deriving fork seeds, because it is a
// bijection with good avalanche behaviour even from small seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** generator. The zero value is invalid; use
// New. Source is not safe for concurrent use; clone or fork instead of
// sharing.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64. Two Sources
// created with the same seed produce identical streams.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator to the state derived from seed, as if it
// had just been created by New(seed).
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** requires a state that is not all zero; splitmix64 of
	// any seed cannot produce four zero words, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 bits of the stream.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Clone returns an independent copy of r at its current state. The
// clone and the original then produce identical streams — this is the
// primitive behind coordinated induced spin flips: each chip gets a
// clone and draws the same values at the same logical step.
func (r *Source) Clone() *Source {
	c := *r
	return &c
}

// Fork derives a new, statistically independent Source from r without
// disturbing replicas of r: the fork seed is drawn by hashing the
// current state with a label rather than by advancing the stream.
// Distinct labels give distinct streams.
func (r *Source) Fork(label uint64) *Source {
	seed := r.s[0] ^ rotl(r.s[2], 13) ^ (label * 0x9e3779b97f4a7c15)
	mix := seed
	return New(splitmix64(&mix))
}

// State returns the current internal state, for equality checks in
// tests and for snapshotting a synchronized ensemble.
func (r *Source) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State, positioning
// the stream exactly where the snapshot was taken — the primitive
// behind bit-identical checkpoint/resume. An all-zero state is invalid
// for xoshiro256** (the generator would emit zeros forever); it is
// replaced with the same guard word Reseed uses, so a corrupt snapshot
// degrades the stream but can never wedge it.
func (r *Source) SetState(s [4]uint64) {
	r.s = s
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits, standard conversion.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift with rejection for exact uniformity.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Spin returns -1 or +1 with equal probability, the natural random
// initial value for an Ising spin.
func (r *Source) Spin() int8 {
	if r.Uint64()&1 == 0 {
		return -1
	}
	return 1
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the
// Marsaglia polar method. SBM-style solvers use Gaussian initial
// positions and noise terms.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
