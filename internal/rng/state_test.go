package rng

import "testing"

func TestSetStateResumesStreamExactly(t *testing.T) {
	r := New(42)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 64)
	for i := range want {
		want[i] = r.Uint64()
	}

	// A fresh source positioned with SetState must continue the exact
	// stream, draw for draw.
	fresh := New(0)
	fresh.SetState(st)
	for i, w := range want {
		if got := fresh.Uint64(); got != w {
			t.Fatalf("draw %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestSetStateRejectsAllZero(t *testing.T) {
	// All-zero is the one invalid xoshiro256** state (the stream would
	// be stuck at zero forever); SetState must substitute a usable one.
	r := New(1)
	r.SetState([4]uint64{})
	seen := false
	for i := 0; i < 16; i++ {
		if r.Uint64() != 0 {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("all-zero state wedged the generator")
	}
}
