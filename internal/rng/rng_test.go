package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: streams diverged: %d vs %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d of 100 outputs", same)
	}
}

func TestCloneTracksOriginal(t *testing.T) {
	a := New(7)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	c := a.Clone()
	for i := 0; i < 1000; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatalf("clone diverged at step %d", i)
		}
	}
}

func TestCloneIsIndependentState(t *testing.T) {
	a := New(7)
	c := a.Clone()
	a.Uint64() // advance only the original
	if a.State() == c.State() {
		t.Fatal("advancing original mutated the clone")
	}
}

func TestForkDoesNotDisturbStream(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Fork(1)
	_ = a.Fork(2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Fork advanced the parent stream (step %d)", i)
		}
	}
}

func TestForkLabelsIndependent(t *testing.T) {
	a := New(9)
	f1 := a.Fork(1)
	f2 := a.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forks with different labels agree on %d of 100 outputs", same)
	}
}

func TestForkSameLabelSameStream(t *testing.T) {
	a := New(9)
	f1 := a.Fork(5)
	f2 := a.Fork(5)
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("same-label forks should be identical")
		}
	}
}

func TestReseedResets(t *testing.T) {
	a := New(123)
	first := a.Uint64()
	for i := 0; i < 50; i++ {
		a.Uint64()
	}
	a.Reseed(123)
	if a.Uint64() != first {
		t.Fatal("Reseed did not restore the initial stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	r := New(5)
	f := func(n uint16, steps uint8) bool {
		bound := int(n%1000) + 1
		for i := 0; i < int(steps); i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	const buckets = 10
	const n = 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d has fraction %v, want ~0.1", b, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestSpinValues(t *testing.T) {
	r := New(8)
	plus, minus := 0, 0
	for i := 0; i < 10000; i++ {
		switch r.Spin() {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatal("Spin returned a value outside {-1,+1}")
		}
	}
	if plus < 4500 || minus < 4500 {
		t.Fatalf("Spin badly unbalanced: +%d -%d", plus, minus)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(10)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	if r.Bool(-0.5) {
		t.Fatal("Bool(-0.5) returned true")
	}
	if !r.Bool(1.5) {
		t.Fatal("Bool(1.5) returned false")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit fraction %v", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(12)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	f := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(14)
	data := make([]int, 50)
	for i := range data {
		data[i] = i
	}
	r.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	seen := make([]bool, len(data))
	for _, v := range data {
		if seen[v] {
			t.Fatalf("value %d duplicated after shuffle", v)
		}
		seen[v] = true
	}
}

func TestSynchronizedReplicasStaySynchronized(t *testing.T) {
	// The coordinated-induced-flip invariant: k clones drawing the same
	// number of values produce identical sequences (DESIGN.md Sec 6).
	master := New(99)
	replicas := make([]*Source, 8)
	for i := range replicas {
		replicas[i] = master.Clone()
	}
	for step := 0; step < 500; step++ {
		want := replicas[0].Uint64()
		for i := 1; i < len(replicas); i++ {
			if got := replicas[i].Uint64(); got != want {
				t.Fatalf("replica %d diverged at step %d", i, step)
			}
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
