// Package power provides first-order area, power and energy models for
// the machines discussed in the paper. Sec 6.3 claims a 8192-spin BRIM
// chip is ~80 mm² in 45 nm and burns <10 W — far below the cabinet
// machines (D-Wave's 25 kW cryostat, CIM's 200 W bench) and below a
// single FPGA of the SBM cluster. These models make such claims
// computable for arbitrary configurations, so design-space sweeps can
// rank machine metrics (Sec 2.2's fourth design step) and not just
// solution quality.
//
// The models are deliberately first-order: area scales with coupler
// count (the N² RRAM/resistor array dominates), power with coupler
// activity and the digital interface, energy with power × anneal time.
// Constants are calibrated to reproduce the paper's quoted numbers at
// the paper's design point; absolute values away from that point are
// estimates, relative comparisons are the purpose.
package power

import (
	"fmt"
	"math"
)

// Technology describes a CMOS process for scaling.
type Technology struct {
	// Node is the feature size in nm.
	Node float64
}

// scale returns the linear shrink factor relative to the 45 nm
// calibration node.
func (t Technology) scale() float64 {
	if t.Node <= 0 {
		panic(fmt.Sprintf("power: node %v nm", t.Node))
	}
	return t.Node / 45.0
}

// Calibration constants, chosen so that a 8192-spin, 45 nm BRIM chip
// comes out at the paper's ~80 mm² and <10 W.
const (
	// couplerAreaUM2 is the 45 nm area of one coupling unit (resistor
	// + DAC slice + switches) in µm². 8192² couplers ≈ 79 mm².
	couplerAreaUM2 = 1.18
	// nodeAreaUM2 is the per-node area (capacitor, comparator,
	// feedback) in µm².
	nodeAreaUM2 = 60
	// couplerActiveUW is the average power of one coupler at the
	// calibration operating point, in µW: 8192² × 0.1 µW ≈ 6.7 W,
	// which with node and interface power keeps the chip under 10 W.
	couplerActiveUW = 0.1
	// nodeActiveUW is the per-node analog power in µW.
	nodeActiveUW = 25
	// interfaceWPerChannel is the digital fabric power per channel in
	// W (SerDes-class links).
	interfaceWPerChannel = 0.75
)

// Chip is one Ising chip design point.
type Chip struct {
	// Spins is the node count; couplers are Spins².
	Spins int
	// Tech is the process node.
	Tech Technology
	// Channels is the number of fabric channels (0 for a standalone
	// chip).
	Channels int
}

// validate panics on nonsense.
func (c Chip) validate() {
	if c.Spins < 1 {
		panic(fmt.Sprintf("power: %d spins", c.Spins))
	}
	if c.Channels < 0 {
		panic(fmt.Sprintf("power: %d channels", c.Channels))
	}
}

// AreaMM2 returns the estimated die area in mm².
func (c Chip) AreaMM2() float64 {
	c.validate()
	s := c.Tech.scale()
	couplers := float64(c.Spins) * float64(c.Spins)
	um2 := couplers*couplerAreaUM2*s*s + float64(c.Spins)*nodeAreaUM2*s*s
	return um2 / 1e6
}

// PowerW returns the estimated chip power in watts. Analog power
// scales with the shrink (capacitance drops); interface power is
// node-independent to first order.
func (c Chip) PowerW() float64 {
	c.validate()
	s := c.Tech.scale()
	couplers := float64(c.Spins) * float64(c.Spins)
	analogUW := couplers*couplerActiveUW*s + float64(c.Spins)*nodeActiveUW*s
	return analogUW/1e6 + float64(c.Channels)*interfaceWPerChannel
}

// System is a multi-chip machine.
type System struct {
	Chip  Chip
	Chips int
}

// validate panics on nonsense.
func (s System) validate() {
	if s.Chips < 1 {
		panic(fmt.Sprintf("power: %d chips", s.Chips))
	}
}

// TotalAreaMM2 returns the silicon area across chips.
func (s System) TotalAreaMM2() float64 {
	s.validate()
	return float64(s.Chips) * s.Chip.AreaMM2()
}

// TotalPowerW returns the system power.
func (s System) TotalPowerW() float64 {
	s.validate()
	return float64(s.Chips) * s.Chip.PowerW()
}

// EnergyPerSolveJ returns the energy of one anneal of the given model
// time (ns), in joules.
func (s System) EnergyPerSolveJ(modelNS float64) float64 {
	if modelNS <= 0 {
		panic(fmt.Sprintf("power: modelNS %v", modelNS))
	}
	return s.TotalPowerW() * modelNS * 1e-9
}

// Reference machines from the literature, as quoted in the paper
// (Secs 2.2 and 6.2): power in watts, solve time for their flagship
// K-graph result in ns.
type Reference struct {
	Name    string
	PowerW  float64
	SolveNS float64
}

// References returns the paper's comparison points.
func References() []Reference {
	return []Reference{
		{"D-Wave 2000q (cryogenic QA)", 25000, 240e3},
		{"CIM (optical, 2000 node)", 200, 5e6},
		{"8-FPGA dSBM (K16384)", 8 * 60, 2.47e6},
	}
}

// EnergyJ returns a reference machine's energy per solve in joules.
func (r Reference) EnergyJ() float64 { return r.PowerW * r.SolveNS * 1e-9 }

// AdvantageOver returns (energy ratio, time ratio) of this system
// solving in modelNS versus the reference machine — the "orders of
// magnitude better machine metrics" arithmetic of the introduction.
func (s System) AdvantageOver(ref Reference, modelNS float64) (energyRatio, timeRatio float64) {
	e := s.EnergyPerSolveJ(modelNS)
	if e == 0 {
		return math.Inf(1), math.Inf(1)
	}
	return ref.EnergyJ() / e, ref.SolveNS / modelNS
}
