package power

import (
	"math"
	"testing"
	"testing/quick"
)

// paperChip is the design point of Sec 6.3: 8192 spins, 45 nm, three
// fabric channels.
func paperChip() Chip {
	return Chip{Spins: 8192, Tech: Technology{Node: 45}, Channels: 3}
}

func TestCalibrationMatchesPaperClaims(t *testing.T) {
	c := paperChip()
	// "about 80 mm² in a 45 nm technology"
	if a := c.AreaMM2(); a < 70 || a > 90 {
		t.Fatalf("8192-spin 45nm area = %.1f mm², want ~80", a)
	}
	// "consume much less power (less than 10 W)"
	if p := c.PowerW(); p >= 10 || p < 5 {
		t.Fatalf("8192-spin power = %.1f W, want <10 and sane", p)
	}
}

func TestAreaScalesQuadratically(t *testing.T) {
	small := Chip{Spins: 1000, Tech: Technology{Node: 45}}
	big := Chip{Spins: 2000, Tech: Technology{Node: 45}}
	ratio := big.AreaMM2() / small.AreaMM2()
	if ratio < 3.8 || ratio > 4.05 {
		t.Fatalf("doubling spins scaled area %vx, want ~4x", ratio)
	}
}

func TestShrinkHelps(t *testing.T) {
	at45 := Chip{Spins: 4096, Tech: Technology{Node: 45}}
	at16 := Chip{Spins: 4096, Tech: Technology{Node: 16}}
	if at16.AreaMM2() >= at45.AreaMM2() {
		t.Fatal("16 nm die not smaller than 45 nm")
	}
	if at16.PowerW() >= at45.PowerW() {
		t.Fatal("16 nm analog power not lower than 45 nm")
	}
}

func TestInterfacePowerAdds(t *testing.T) {
	bare := Chip{Spins: 1024, Tech: Technology{Node: 45}}
	linked := Chip{Spins: 1024, Tech: Technology{Node: 45}, Channels: 3}
	if d := linked.PowerW() - bare.PowerW(); math.Abs(d-3*interfaceWPerChannel) > 1e-9 {
		t.Fatalf("3 channels added %v W", d)
	}
}

func TestSystemTotals(t *testing.T) {
	sys := System{Chip: paperChip(), Chips: 4}
	if sys.TotalAreaMM2() != 4*paperChip().AreaMM2() {
		t.Fatal("system area not 4x chip area")
	}
	if sys.TotalPowerW() != 4*paperChip().PowerW() {
		t.Fatal("system power not 4x chip power")
	}
}

func TestEnergyPerSolve(t *testing.T) {
	sys := System{Chip: paperChip(), Chips: 4}
	// 1.1 µs at ~36 W is ~40 µJ.
	e := sys.EnergyPerSolveJ(1100)
	if e < 20e-6 || e > 80e-6 {
		t.Fatalf("energy per 1.1 µs solve = %v J, want tens of µJ", e)
	}
}

func TestAdvantageOverReferences(t *testing.T) {
	// The introduction's claim: orders of magnitude better energy and
	// time than every reference machine.
	sys := System{Chip: paperChip(), Chips: 4}
	for _, ref := range References() {
		eRatio, tRatio := sys.AdvantageOver(ref, 1100)
		if eRatio < 100 {
			t.Fatalf("%s: energy advantage only %.0fx", ref.Name, eRatio)
		}
		if tRatio < 100 {
			t.Fatalf("%s: time advantage only %.0fx", ref.Name, tRatio)
		}
	}
}

func TestMonotoneInSpinsProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := int(aRaw%8000) + 1
		b := int(bRaw%8000) + 1
		if a > b {
			a, b = b, a
		}
		ca := Chip{Spins: a, Tech: Technology{Node: 45}}
		cb := Chip{Spins: b, Tech: Technology{Node: 45}}
		return ca.AreaMM2() <= cb.AreaMM2()+1e-12 && ca.PowerW() <= cb.PowerW()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero spins":   func() { Chip{Spins: 0, Tech: Technology{Node: 45}}.AreaMM2() },
		"neg channels": func() { Chip{Spins: 1, Tech: Technology{Node: 45}, Channels: -1}.PowerW() },
		"zero node":    func() { Chip{Spins: 1}.AreaMM2() },
		"zero chips":   func() { System{Chip: paperChip()}.TotalPowerW() },
		"zero modelNS": func() { System{Chip: paperChip(), Chips: 1}.EnergyPerSolveJ(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
