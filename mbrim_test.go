package mbrim_test

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"mbrim"
)

func TestPublicSurfaceEndToEnd(t *testing.T) {
	g := mbrim.CompleteGraph(48, 1)
	m := g.ToIsing()
	out, err := mbrim.Solve(mbrim.Request{
		Kind: mbrim.MBRIMConcurrent, Model: m, Graph: g,
		Chips: 4, DurationNS: 30, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cut <= 0 {
		t.Fatalf("cut %v", out.Cut)
	}
	if math.Abs(out.Cut-g.CutValue(out.Spins)) > 1e-9 {
		t.Fatal("cut inconsistent with spins")
	}
}

func TestCompleteGraphSeeded(t *testing.T) {
	a := mbrim.CompleteGraph(20, 7)
	b := mbrim.CompleteGraph(20, 7)
	for _, e := range a.Edges() {
		if b.Weight(e.U, e.V) != e.Weight {
			t.Fatal("CompleteGraph not reproducible")
		}
	}
}

func TestRandomGraphDensity(t *testing.T) {
	g := mbrim.RandomGraph(200, 0.1, 3)
	max := 200 * 199 / 2
	frac := float64(g.M()) / float64(max)
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("density %v", frac)
	}
}

func TestReadGraphRoundTrip(t *testing.T) {
	g := mbrim.RandomGraph(20, 0.4, 4)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := mbrim.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 20 || back.M() != g.M() {
		t.Fatal("round trip changed graph")
	}
}

func TestDirectSystemUse(t *testing.T) {
	m := mbrim.CompleteGraph(32, 5).ToIsing()
	sys := mbrim.MustSystem(m, mbrim.SystemConfig{Chips: 4, Seed: 6})
	res := sys.RunConcurrent(30)
	if res.Energy >= 0 {
		t.Fatalf("no progress: %v", res.Energy)
	}
	res2 := mbrim.MustSystem(m, mbrim.SystemConfig{Chips: 4, Seed: 6, EpochNS: 5}).RunBatch(4, 30)
	if res2.BestEnergy >= 0 {
		t.Fatalf("batch no progress: %v", res2.BestEnergy)
	}
}

func TestPlanLayoutPublic(t *testing.T) {
	l, err := mbrim.PlanLayout(4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.SpinsPerChip != 4000 {
		t.Fatalf("spins per chip %d", l.SpinsPerChip)
	}
	if _, err := mbrim.PlanLayout(4, 1, 3); err == nil {
		t.Fatal("accepted invalid chip count")
	}
}

func TestQUBOWorkflow(t *testing.T) {
	// A tiny set-partition QUBO: minimize (x0 + x1 - 1)^2 — exactly one
	// of two variables set.
	q := mbrim.NewQUBO(2)
	q.SetCoeff(0, 0, -1)
	q.SetCoeff(1, 1, -1)
	q.SetCoeff(0, 1, 2)
	m, offset := q.ToIsing()
	out, err := mbrim.Solve(mbrim.Request{Kind: mbrim.SA, Model: m, Sweeps: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Energy + offset; math.Abs(got-(-1)) > 1e-9 {
		t.Fatalf("QUBO optimum %v, want -1", got)
	}
}

func TestExtractPublic(t *testing.T) {
	m := mbrim.CompleteGraph(10, 8).ToIsing()
	spins := make([]int8, 10)
	for i := range spins {
		spins[i] = 1
	}
	sp := mbrim.Extract(m, []int{0, 1, 2}, spins)
	if sp.Model.N() != 3 {
		t.Fatalf("sub-problem size %d", sp.Model.N())
	}
}

func TestKindsListed(t *testing.T) {
	ks := mbrim.Kinds()
	if len(ks) < 9 {
		t.Fatalf("only %d kinds", len(ks))
	}
	joined := strings.Join(ks, ",")
	for _, want := range []string{"sa", "brim", "mbrim", "mbrim-batch", "qbsolv", "dsbm", "portfolio"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("kind %q missing from %v", want, ks)
		}
	}
}

// ExampleSolve demonstrates the quickstart path: build a K-graph,
// solve it on a 4-chip multiprocessor, read the cut.
func ExampleSolve() {
	g := mbrim.CompleteGraph(64, 42)
	out, err := mbrim.Solve(mbrim.Request{
		Kind:       mbrim.MBRIMConcurrent,
		Model:      g.ToIsing(),
		Graph:      g,
		Chips:      4,
		DurationNS: 50,
		Seed:       42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Cut > 0, len(out.Spins))
	// Output: true 64
}
