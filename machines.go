package mbrim

import (
	"mbrim/internal/brim"
	"mbrim/internal/interconnect"
	"mbrim/internal/pt"
	"mbrim/internal/sbm"
)

// Fabric topology selection for SystemConfig.Topology.
type FabricTopology = interconnect.Topology

// The supported fabric congestion models.
const (
	// TopologyDedicated gives each chip private egress channels (the
	// paper's assumption).
	TopologyDedicated = interconnect.Dedicated
	// TopologySharedBus arbitrates one medium among all chips.
	TopologySharedBus = interconnect.SharedBus
	// TopologyRing connects chips in a bidirectional ring.
	TopologyRing = interconnect.Ring
)

// BRIMConfig exposes the single-chip machine's analog knobs (schedule
// gains, device variation, thermal noise) for direct use and for
// SystemConfig.Brim.
type BRIMConfig = brim.Config

// BRIMMachine is a stateful single-chip BRIM simulator for callers who
// drive the dynamics epoch by epoch themselves.
type BRIMMachine = brim.Machine

// NewBRIM builds a single-chip BRIM machine over the model.
func NewBRIM(m *Model, cfg BRIMConfig) *BRIMMachine { return brim.New(m, cfg) }

// Multi-chip simulated bifurcation — the architecture of the paper's
// 8-FPGA comparator [49].
type (
	// MultiChipSBMConfig parameterizes a partitioned SB run.
	MultiChipSBMConfig = sbm.MultiChipConfig
	// MultiChipSBMResult reports it, with exchange traffic accounting.
	MultiChipSBMResult = sbm.MultiChipResult
	// SBMConfig parameterizes single-node simulated bifurcation.
	SBMConfig = sbm.Config
)

// SBM variant selectors.
const (
	SBMBallistic = sbm.Ballistic
	SBMDiscrete  = sbm.Discrete
)

// SolveMultiChipSBM runs partitioned simulated bifurcation with
// periodic position exchange.
func SolveMultiChipSBM(m *Model, cfg MultiChipSBMConfig) *MultiChipSBMResult {
	return sbm.SolveMultiChip(m, cfg)
}

// Parallel tempering for direct use (the Solve surface reaches it via
// Kind PT).
type (
	// PTConfig parameterizes replica-exchange Monte Carlo.
	PTConfig = pt.Config
	// PTResult reports a run.
	PTResult = pt.Result
)

// SolvePT runs parallel tempering on the model.
func SolvePT(m *Model, cfg PTConfig) *PTResult { return pt.Solve(m, cfg) }

// Population annealing, the birth/death Monte Carlo baseline.
type (
	// PopulationConfig parameterizes population annealing.
	PopulationConfig = pt.PopulationConfig
	// PopulationResult reports it.
	PopulationResult = pt.PopulationResult
)

// SolvePopulation runs population annealing on the model.
func SolvePopulation(m *Model, cfg PopulationConfig) *PopulationResult {
	return pt.SolvePopulation(m, cfg)
}
