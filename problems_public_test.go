package mbrim_test

import (
	"math"
	"testing"

	"mbrim"
)

func TestSolveExactPublic(t *testing.T) {
	m := mbrim.NewModel(3)
	m.SetCoupling(0, 1, 1)
	m.SetCoupling(1, 2, 1)
	m.SetCoupling(0, 2, 1)
	res := mbrim.SolveExact(m)
	if res.Energy != -3 {
		t.Fatalf("triangle ferromagnet optimum %v, want -3", res.Energy)
	}
	if err := mbrim.VerifyLocalOptimum(m, res.Spins, res.Energy); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionProblemPublic(t *testing.T) {
	p := mbrim.PartitionProblem{Numbers: []float64{4, 3, 3, 2}}
	m, offset := p.Ising()
	res := mbrim.SolveExact(m)
	if got := res.Energy + offset; math.Abs(got) > 1e-9 {
		t.Fatalf("imbalance² %v, want 0 (6/6 split exists)", got)
	}
}

func TestSATProblemPublic(t *testing.T) {
	s := mbrim.SATProblem{
		Vars: 2,
		Clauses: [][]mbrim.SATLiteral{
			{{Var: 0}, {Var: 1}},
			{{Var: 0, Negated: true}},
		},
	}
	m, _ := s.Ising()
	res := mbrim.SolveExact(m)
	assign := s.Decode(res.Spins)
	if !s.Satisfied(assign) {
		t.Fatalf("decode %v does not satisfy", assign)
	}
	if assign[0] || !assign[1] {
		t.Fatalf("expected x0=false x1=true, got %v", assign)
	}
}

func TestEmbeddingPublic(t *testing.T) {
	g := mbrim.CompleteGraph(6, 1)
	e := mbrim.EmbedComplete(g.ToIsing(), 0)
	if e.PhysicalNodes() != 30 {
		t.Fatalf("physical nodes %d, want 30", e.PhysicalNodes())
	}
	if mbrim.EffectiveCapacity(30) != 6 {
		t.Fatal("EffectiveCapacity inconsistent with embedding size")
	}
}

func TestQUBORoundTripPublic(t *testing.T) {
	g := mbrim.CompleteGraph(8, 2)
	m := g.ToIsing()
	q, off1 := mbrim.ToQUBO(m)
	back, off2 := mbrim.FromQUBO(q)
	spins := mbrim.NewRNG(3)
	s := make([]int8, 8)
	for i := range s {
		s[i] = spins.Spin()
	}
	// E(σ) = Value(x) + off1 and Value(x) = E'(σ) + off2 ⇒ E = E' + off1 + off2.
	if d := math.Abs(m.Energy(s) - (back.Energy(s) + off1 + off2)); d > 1e-9 {
		t.Fatalf("double conversion drifted by %v", d)
	}
}

func TestSparseWorkflowPublic(t *testing.T) {
	g := mbrim.RandomGraph(500, 0.02, 9)
	sm := g.ToSparseIsing()
	res := mbrim.Anneal(sm, 200, 10)
	cut := g.CutValue(res.Spins)
	if cut <= 0 {
		t.Fatalf("sparse anneal cut %v", cut)
	}
	// Sparse and dense agree on the energy of the found state.
	if d := math.Abs(g.ToIsing().Energy(res.Spins) - res.Energy); d > 1e-6 {
		t.Fatalf("sparse energy off by %v", d)
	}
}

func TestSparsifyPublic(t *testing.T) {
	m := mbrim.NewModel(4)
	m.SetCoupling(0, 3, -2)
	sm := mbrim.Sparsify(m)
	if sm.NNZ() != 2 || sm.Degree(0) != 1 {
		t.Fatalf("NNZ=%d deg0=%d", sm.NNZ(), sm.Degree(0))
	}
}
