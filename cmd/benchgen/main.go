// Command benchgen emits benchmark graphs in the Gset text format.
//
// Usage:
//
//	benchgen -kind complete -n 2000 -seed 1 > k2000.gset
//	benchgen -kind random -n 5000 -p 0.01 > g5000.gset
//	benchgen -kind regular -n 800 -d 6 > r800.gset
//	benchgen -suite bench/        # write the standard instance set
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mbrim/internal/graph"
	"mbrim/internal/rng"
)

func main() {
	kind := flag.String("kind", "complete", "graph family: complete, random, regular")
	n := flag.Int("n", 1000, "number of vertices")
	p := flag.Float64("p", 0.01, "edge probability (random)")
	d := flag.Int("d", 6, "base degree (regular)")
	seed := flag.Uint64("seed", 1, "random seed")
	suite := flag.String("suite", "", "write the standard benchmark suite into this directory and exit")
	flag.Parse()

	if *suite != "" {
		if err := writeSuite(*suite, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}

	r := rng.New(*seed)
	var g *graph.Graph
	switch *kind {
	case "complete":
		g = graph.Complete(*n, r)
	case "random":
		g = graph.Random(*n, *p, r)
	case "regular":
		g = graph.RandomRegularish(*n, *d, r)
	default:
		fmt.Fprintf(os.Stderr, "benchgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if err := g.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

// writeSuite emits the standard instance families (the same set
// `experiments suite` measures) as Gset files plus a MANIFEST.
func writeSuite(dir string, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"k64", graph.Complete(64, rng.New(seed))},
		{"k128", graph.Complete(128, rng.New(seed+1))},
		{"k256", graph.Complete(256, rng.New(seed+2))},
		{"k512", graph.Complete(512, rng.New(seed+3))},
		{"g500_p02", graph.Random(500, 0.02, rng.New(seed+4))},
		{"g1000_p01", graph.Random(1000, 0.01, rng.New(seed+5))},
		{"g2000_p005", graph.Random(2000, 0.005, rng.New(seed+6))},
		{"r400_d6", graph.RandomRegularish(400, 6, rng.New(seed+7))},
		{"r800_d6", graph.RandomRegularish(800, 6, rng.New(seed+8))},
	}
	manifest, err := os.Create(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	fmt.Fprintf(manifest, "# mbrim standard suite, seed %d\n", seed)
	for _, inst := range instances {
		path := filepath.Join(dir, inst.name+".gset")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		if err := inst.g.Write(w); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(manifest, "%s n=%d m=%d\n", inst.name+".gset", inst.g.N(), inst.g.M())
	}
	return nil
}
