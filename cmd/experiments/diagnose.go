package main

import (
	"flag"
	"fmt"

	"mbrim/internal/core"
	"mbrim/internal/diag"
)

func init() {
	register("diagnose", "convergence & partition-quality diagnostics sweep over chips × bandwidth", runDiagnose)
}

// runDiagnose sweeps the multiprocessor over chip counts and fabric
// bandwidths, reducing each run's live event stream through
// internal/diag: chip-pair shadow-spin disagreement (the partition-
// quality lens on the paper's multi-chip decomposition), fabric stall
// attribution, plateau detection, and the live TTS estimate with its
// Wilson confidence band.
func runDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	n := fs.Int("n", 192, "K-graph size")
	duration := fs.Float64("duration", 400, "anneal length, model ns")
	epoch := fs.Float64("epoch", 10, "sync epoch, ns")
	seed := fs.Uint64("seed", 1, "random seed")
	mode := fs.String("mode", "concurrent", "run mode: concurrent or sequential")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, m := kgraph(*n, *seed)
	kind := core.MBRIMConcurrent
	if *mode == "sequential" {
		kind = core.MBRIMSequential
	}

	type bw struct {
		name string
		v    float64
	}
	bws := []bw{{"ideal", 0}, {"HB", core.HBChannelBytesPerNS}, {"LB", core.LBChannelBytesPerNS}}

	fmt.Printf("# diagnostics sweep on K%d, %s mode, %.0f ns anneal, %.0f ns epochs\n",
		*n, *mode, *duration, *epoch)
	fmt.Printf("%-6s %-6s %10s %10s %8s %8s %7s %12s\n",
		"chips", "bw", "disagree", "maxdis", "stall%", "plateau", "p(hit)", "TTS ns")
	for _, chips := range []int{2, 4, 8} {
		for _, b := range bws {
			red := diag.New(diag.Config{})
			if _, err := core.Solve(core.Request{
				Kind:              kind,
				Model:             m,
				Seed:              *seed,
				Chips:             chips,
				DurationNS:        *duration,
				EpochNS:           *epoch,
				ChannelBytesPerNS: b.v,
				SampleEveryNS:     *duration / 100,
				Tracer:            red,
				Diag:              true,
			}); err != nil {
				return err
			}
			s := red.Snapshot()
			var mean, maxDis float64
			for _, p := range s.Pairs {
				mean += p.MeanDisagreement
				if p.MaxDisagreement > maxDis {
					maxDis = p.MaxDisagreement
				}
			}
			if len(s.Pairs) > 0 {
				mean /= float64(len(s.Pairs))
			}
			tts, p := "-", 0.0
			if s.TTS != nil {
				p = s.TTS.SuccessP
				if s.TTS.TTSNS >= 0 {
					tts = fmt.Sprintf("%.3g", s.TTS.TTSNS)
				} else {
					tts = "inf" // -1 sentinel: no trial reached target yet
				}
			}
			fmt.Printf("%-6d %-6s %10.4f %10.4f %8.2f %8v %7.2f %12s\n",
				chips, b.name, mean, maxDis, 100*s.Traffic.StallFraction, s.Plateaued, p, tts)
		}
	}
	note("Shadow-spin disagreement grows with chip count and a starved fabric leaves")
	note("chips annealing against staler remote state — the partition-quality effect")
	note("the multi-chip decomposition trades against capacity. stall%% is the")
	note("fabric's share of elapsed time; TTS is the live self-target estimate.")
	return nil
}
