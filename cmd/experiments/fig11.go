package main

import (
	"flag"
	"fmt"

	"mbrim/internal/brim"
	"mbrim/internal/metrics"
	"mbrim/internal/pt"
	"mbrim/internal/sbm"
)

func init() {
	register("fig11", "single-solver landscape: K-graph cut vs time across machines", runFig11)
}

// Literature reference points for K2000, taken from the papers the
// figure cites. Only meaningful when the benchmark is the real K2000.
var fig11Literature = []struct {
	name   string
	timeNS float64
	cut    float64
}{
	{"CIM [28] (reported)", 5e6, 33000},
	{"STATICA [54] (reported)", 0.6e6, 32000},
	{"bSBM [22] (reported)", 0.5e6, 33000},
	{"dSBM [22] (reported)", 2e6, 33337},
	{"BRIM model [3] (reported)", 11e3, 33337},
}

// runFig11 reproduces Fig 11: the cut-vs-time landscape of a K-graph
// on a single BRIM chip (model time), SA and both SBM variants
// (measured wall time), plus the literature's reported points.
func runFig11(args []string) error {
	fs := flag.NewFlagSet("fig11", flag.ContinueOnError)
	n := fs.Int("n", 512, "K-graph size (paper: 2000)")
	runs := fs.Int("runs", 10, "restarts per time scale (paper: 100)")
	duration := fs.Float64("duration", 400, "BRIM anneal duration, ns")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, m := kgraph(*n, *seed)

	// BRIM: one chip, quality-vs-model-time trace, best over restarts.
	brimSeries := &metrics.Series{Name: "BRIM (model ns)"}
	best := make(map[float64]float64)
	for r := 0; r < *runs; r++ {
		res := brim.Solve(m, brim.SolveConfig{
			Duration:       *duration,
			SampleInterval: *duration / 20,
			Config:         brim.Config{Seed: *seed + uint64(r)},
		})
		for _, p := range res.Trace {
			cut := g.CutFromEnergy(p.Y)
			if cut > best[p.X] {
				best[p.X] = cut
			}
		}
	}
	for _, p := range sortedPoints(best) {
		brimSeries.Points = append(brimSeries.Points, p)
	}

	sweeps := []int{5, 15, 50, 150, 500}
	steps := []int{20, 60, 200, 600, 2000}
	saPts := saLadder(g, m, sweeps, *runs, *seed)
	bsbPts := sbmLadder(g, m, sbm.Ballistic, steps, *runs, *seed)
	dsbPts := sbmLadder(g, m, sbm.Discrete, steps, *runs, *seed)

	// Parallel tempering: the strongest software point per time scale.
	ptSeries := &metrics.Series{Name: "PT best (measured ns)"}
	for _, sw := range sweeps {
		res := pt.Solve(m, pt.Config{Replicas: 8, Sweeps: sw, Seed: *seed})
		ptSeries.Add(float64(res.Wall.Nanoseconds()), g.CutFromEnergy(res.Energy))
	}

	lit := &metrics.Series{Name: "literature points (K2000 only)"}
	for _, p := range fig11Literature {
		lit.Add(p.timeNS, p.cut)
	}

	fmt.Print(metrics.Table(
		fmt.Sprintf("Fig 11: K%d cut value vs time (ns)", *n),
		brimSeries,
		ladderSeries("SA best (measured ns)", saPts, func(p softwareLadderPoint) float64 { return p.BestCut }),
		ladderSeries("SA mean (measured ns)", saPts, func(p softwareLadderPoint) float64 { return p.MeanCut }),
		ladderSeries("bSBM best (measured ns)", bsbPts, func(p softwareLadderPoint) float64 { return p.BestCut }),
		ladderSeries("dSBM best (measured ns)", dsbPts, func(p softwareLadderPoint) float64 { return p.BestCut }),
		ptSeries,
		lit,
	))
	if *n != 2000 {
		note("literature points are reported for K2000; run with -n 2000 to compare directly.")
	}
	bestBRIM := lastY(brimSeries)
	bestSA := saPts[len(saPts)-1].BestCut
	note("BRIM reaches cut %.0f in %.0f ns of machine time; SA's best after %.2f ms is %.0f.",
		bestBRIM, *duration, float64(saPts[len(saPts)-1].Wall.Nanoseconds())/1e6, bestSA)
	note("expected shape (paper): BRIM attains the best-known cut ~2 orders of magnitude")
	note("faster than dSBM and ~6 orders faster than SA; only dSBM matches its quality.")
	return nil
}

func sortedPoints(m map[float64]float64) []metrics.Point {
	pts := make([]metrics.Point, 0, len(m))
	for x, y := range m {
		pts = append(pts, metrics.Point{X: x, Y: y})
	}
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].X < pts[j-1].X; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	return pts
}

func lastY(s *metrics.Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Y
}
