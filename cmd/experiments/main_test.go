package main

import (
	"os"
	"testing"
)

// TestEverySubcommandRuns drives each registered experiment with
// deliberately tiny parameters, guarding the harness against
// regressions (flag drift, panics, broken wiring). Output goes to the
// test log's stdout; correctness of the numbers is covered by the
// package tests — this checks the plumbing.
func TestEverySubcommandRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is seconds-long; skipped with -short")
	}
	// Silence the experiment output during tests.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()

	tiny := map[string][]string{
		"fig1":            {"-cap", "24", "-maxn", "32", "-step", "8", "-sasweeps", "20", "-saruns", "2"},
		"fig9":            {"-n", "64", "-solvers", "4", "-runs", "1", "-epochs", "2"},
		"fig10":           {"-chips", "3", "-jobs", "3", "-epochs", "4"},
		"fig11":           {"-n", "48", "-runs", "2", "-duration", "20"},
		"fig12":           {"-n", "64", "-duration", "20", "-runs", "2"},
		"fig13":           {"-n", "48", "-duration", "20"},
		"fig14":           {"-n", "48", "-duration", "20", "-runs", "1"},
		"fig15":           {"-n", "48", "-duration", "20"},
		"firstprinciples": {"-n", "48", "-sweeps", "20", "-duration", "20"},
		"summary":         {"-n", "64", "-duration", "20", "-runs", "2"},
		"capacity":        {"-maxn", "8"},
		"demand":          {"-n", "48", "-duration", "20", "-bucket", "5"},
		"macrochip":       {"-n", "48", "-duration", "20", "-runs", "1"},
		"reconfig":        {"-chipn", "100"},
		"machinemetrics":  nil,
		"tts":             {"-n", "48", "-runs", "3", "-duration", "20", "-sweeps", "20", "-steps", "50"},
		"nonideal":        {"-n", "48", "-duration", "20", "-runs", "1"},
		"ablation":        {"-n", "48", "-duration", "20"},
		"resilience":      {"-n", "48", "-duration", "20", "-schedules", "1"},
		"suite":           {"-runs", "1", "-sweeps", "20", "-steps", "50", "-duration", "20"},
		"guardrails":      {"-n", "48", "-duration", "20", "-cut-epoch", "2"},
		"diagnose":        {"-n", "48", "-duration", "40"},
		"portfolio":       {"-n", "32", "-en", "8", "-sweeps", "20", "-steps", "100"},
	}
	for name, cmd := range commands {
		args, ok := tiny[name]
		if !ok {
			t.Errorf("subcommand %q has no smoke-test parameters; add it to the table", name)
			continue
		}
		if err := cmd.run(args); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestRegistryComplete pins the expected subcommand set so an
// accidentally dropped registration is caught.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"firstprinciples", "summary", "capacity", "demand", "macrochip",
		"reconfig", "machinemetrics", "tts", "nonideal", "ablation",
		"resilience", "suite", "guardrails", "diagnose", "portfolio",
	}
	for _, name := range want {
		if _, ok := commands[name]; !ok {
			t.Errorf("subcommand %q not registered", name)
		}
	}
	if len(commands) != len(want) {
		t.Errorf("%d subcommands registered, want %d — update the smoke tables", len(commands), len(want))
	}
}
