package main

import (
	"flag"
	"fmt"
	"math"

	"mbrim/internal/brim"
	"mbrim/internal/metrics"
	"mbrim/internal/sa"
	"mbrim/internal/sbm"
)

func init() {
	register("tts", "time-to-solution at 99% confidence: BRIM vs SA vs dSBM", runTTS)
}

// runTTS computes the literature-standard time-to-solution metric for
// the three main solvers on one K-graph: TTS(99%) = t·ln(0.01)/ln(1−p)
// where p is the per-run probability of reaching the target cut. The
// target is the best cut any solver finds across the whole experiment,
// with a small relative tolerance (the usual convention when the true
// optimum is unknown).
func runTTS(args []string) error {
	fs := flag.NewFlagSet("tts", flag.ContinueOnError)
	n := fs.Int("n", 256, "K-graph size")
	runs := fs.Int("runs", 20, "runs per solver")
	tolerance := fs.Float64("tol", 0.02, "relative cut tolerance for success")
	duration := fs.Float64("duration", 300, "BRIM run length, ns")
	sweeps := fs.Int("sweeps", 300, "SA sweeps per run")
	steps := fs.Int("steps", 800, "dSBM steps per run")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, m := kgraph(*n, *seed)

	type solverRuns struct {
		name    string
		cuts    []float64
		runTime float64 // per-run time in ns (model or measured)
		axis    string
	}
	var all []solverRuns

	// BRIM: model time per run is the configured duration.
	{
		sr := solverRuns{name: "BRIM", runTime: *duration, axis: "model ns"}
		for i := 0; i < *runs; i++ {
			res := brim.Solve(m, brim.SolveConfig{Duration: *duration,
				Config: brim.Config{Seed: *seed + uint64(i)}})
			sr.cuts = append(sr.cuts, g.CutFromEnergy(res.Energy))
		}
		all = append(all, sr)
	}
	// SA: measured wall time per run (averaged).
	{
		sr := solverRuns{name: "SA", axis: "measured ns"}
		var wall float64
		for i := 0; i < *runs; i++ {
			res := sa.Solve(m, sa.Config{Sweeps: *sweeps, Seed: *seed + uint64(i)})
			sr.cuts = append(sr.cuts, g.CutFromEnergy(res.Energy))
			wall += float64(res.Wall.Nanoseconds())
		}
		sr.runTime = wall / float64(*runs)
		all = append(all, sr)
	}
	// dSBM.
	{
		sr := solverRuns{name: "dSBM", axis: "measured ns"}
		var wall float64
		for i := 0; i < *runs; i++ {
			res := sbm.Solve(m, sbm.Config{Variant: sbm.Discrete, Steps: *steps, Seed: *seed + uint64(i)})
			sr.cuts = append(sr.cuts, g.CutValue(res.Spins))
			wall += float64(res.Wall.Nanoseconds())
		}
		sr.runTime = wall / float64(*runs)
		all = append(all, sr)
	}

	best := math.Inf(-1)
	for _, sr := range all {
		for _, c := range sr.cuts {
			if c > best {
				best = c
			}
		}
	}
	target := best * (1 - *tolerance)

	fmt.Printf("# TTS(99%%) on K%d, target cut >= %.0f (best found %.0f, tol %.1f%%)\n",
		*n, target, best, *tolerance*100)
	for _, sr := range all {
		// Success = cut >= target ⇔ energy-side comparison flipped.
		hits := 0
		for _, c := range sr.cuts {
			if c >= target {
				hits++
			}
		}
		p := float64(hits) / float64(len(sr.cuts))
		tts := metrics.TTS(sr.runTime, p, 0.99)
		fmt.Printf("%-6s p=%.2f (%d/%d), per-run %.3g %s, TTS(99%%) = %.3g %s\n",
			sr.name, p, hits, len(sr.cuts), sr.runTime, sr.axis, tts, sr.axis)
	}
	note("BRIM's axis is machine model time; SA/dSBM are measured host time — the")
	note("paper's methodology. Expect BRIM's TTS in ~10²-10³ ns of machine time vs")
	note("~10⁷-10¹⁰ ns of compute for the software solvers at equal quality targets.")
	return nil
}
