package main

import (
	"flag"
	"fmt"
	"strings"

	"mbrim/internal/multichip"
)

func init() {
	register("reconfig", "Secs 4.2/5.2: macrochip utilization and reconfigurable-module layouts", runReconfig)
}

// runReconfig prints the structural-architecture results: Fig 4's
// utilization waste on a monolithic macrochip vs the reconfigurable
// design, Fig 7's three module configurations, and Fig 8's 3D stack.
func runReconfig(args []string) error {
	fs := flag.NewFlagSet("reconfig", flag.ContinueOnError)
	chipN := fs.Int("chipn", 8000, "nodes per chip (paper: 8192-class chips)")
	k := fs.Int("k", 4, "macrochip array dimension (k×k chips)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("# Macrochip utilization (Fig 4): k equal problems of one chip's size")
	problems := make([]int, *k)
	for i := range problems {
		problems[i] = *chipN
	}
	mono, err := multichip.PackMonolithic(*chipN, *k, problems)
	if err != nil {
		return err
	}
	reconf, err := multichip.PackReconfigurable(*chipN, problems)
	if err != nil {
		return err
	}
	fmt.Printf("monolithic %dx%d macrochip: %d chips committed, utilization %.3f\n",
		*k, *k, mono.ChipsUsed, mono.Utilization())
	fmt.Printf("reconfigurable chips:      %d chips used,      utilization %.3f\n",
		reconf.ChipsUsed, reconf.Utilization())
	note("expected: monolithic utilization 1/k = %.3f; reconfigurable stays 1.", 1/float64(*k))

	fmt.Println("\n# Reconfigurable module layouts (Fig 7), 4×4 modules per chip")
	for _, chips := range []int{1, 4, 16} {
		l, err := multichip.PlanLayout(4, *chipN/4, chips)
		if err != nil {
			return err
		}
		fmt.Printf("%2d-chip system: slice %dn×%dn, modules regular/shadow/pass = %d/%d/%d, %d spins/chip, %d total\n",
			chips, l.RowsModules, l.ColsModules,
			l.RegularModules, l.ShadowModules, l.PassThroughModules,
			l.SpinsPerChip, l.TotalSpins)
		grid := l.ModeGrid()
		for _, row := range grid {
			cells := make([]string, len(row))
			for i, m := range row {
				switch m {
				case multichip.Regular:
					cells[i] = "R"
				case multichip.ShadowCopy:
					cells[i] = "S"
				default:
					cells[i] = "."
				}
			}
			fmt.Println("   " + strings.Join(cells, " "))
		}
	}

	fmt.Println("\n# 3D stack (Fig 8), 4 layers")
	stack, err := multichip.PlanStack(4, *chipN)
	if err != nil {
		return err
	}
	fmt.Printf("%d layers × %d spins = %d total; shadow TSV lengths per block:\n",
		stack.Layers, stack.ModuleN, stack.TotalSpins())
	for block := 0; block < stack.Layers; block++ {
		var lens []string
		for _, l := range stack.ShadowLayers(block) {
			lens = append(lens, fmt.Sprintf("%d", stack.TSVLength(block, l)))
		}
		fmt.Printf("  block %d: shadows on layers %v, TSV pitches %s\n",
			block, stack.ShadowLayers(block), strings.Join(lens, ","))
	}
	note("shadow registers sit directly above/below their real nodes — the paper's")
	note("observation that 3D integration makes shadows architecturally optional.")
	return nil
}
