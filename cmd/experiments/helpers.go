package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/metrics"
	"mbrim/internal/obs"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
	"mbrim/internal/sbm"
)

// kgraph builds the seeded benchmark K-graph.
func kgraph(n int, seed uint64) (*graph.Graph, *ising.Model) {
	g := graph.Complete(n, rng.New(seed))
	return g, g.ToIsing()
}

// traceFlag registers the shared -trace flag on a subcommand's flag
// set; pass the parsed value to openTrace.
func traceFlag(fs *flag.FlagSet) *string {
	return fs.String("trace", "", "archive the experiment's event stream to this JSONL file")
}

// openTrace opens the archival JSONL tracer named by -trace. The
// returned cleanup flushes and closes the file; tracer and cleanup are
// nil-safe no-ops when the flag was left empty.
func openTrace(path string) (obs.Tracer, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	t := obs.NewJSONL(f)
	return t, func() {
		if err := t.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace %s: %v\n", path, err)
		}
	}, nil
}

// note prints paper-expectation commentary, stripped by tools that
// only want the data.
func note(format string, args ...any) {
	fmt.Printf("#? "+format+"\n", args...)
}

// softwareLadderPoint is one measured (wall time, cut quality) rung of
// a software solver's quality-vs-time curve.
type softwareLadderPoint struct {
	Wall    time.Duration
	BestCut float64
	MeanCut float64
	MinCut  float64
}

// saLadder measures SA quality at increasing sweep budgets, `runs`
// restarts per rung, best/mean/min cut per rung. The wall time is the
// whole batch (the paper's usage pattern: many anneals, take the
// best).
func saLadder(g *graph.Graph, m *ising.Model, sweeps []int, runs int, seed uint64) []softwareLadderPoint {
	out := make([]softwareLadderPoint, 0, len(sweeps))
	for _, s := range sweeps {
		br := sa.SolveBatch(m, sa.Config{Sweeps: s, Seed: seed}, runs)
		out = append(out, ladderPoint(g, br.Wall, resultsCuts(g, br)))
	}
	return out
}

func resultsCuts(g *graph.Graph, br *sa.BatchResult) []float64 {
	cuts := make([]float64, len(br.Results))
	for i, r := range br.Results {
		cuts[i] = g.CutValue(r.Spins)
	}
	return cuts
}

// sbmLadder measures SBM quality at increasing step budgets.
func sbmLadder(g *graph.Graph, m *ising.Model, variant sbm.Variant, steps []int, runs int, seed uint64) []softwareLadderPoint {
	out := make([]softwareLadderPoint, 0, len(steps))
	for _, s := range steps {
		br := sbm.SolveBatch(m, sbm.Config{Variant: variant, Steps: s, Seed: seed}, runs)
		cuts := make([]float64, len(br.Results))
		for i, r := range br.Results {
			cuts[i] = g.CutValue(r.Spins)
		}
		out = append(out, ladderPoint(g, br.Wall, cuts))
	}
	return out
}

func ladderPoint(g *graph.Graph, wall time.Duration, cuts []float64) softwareLadderPoint {
	s := metrics.Summarize(cuts)
	return softwareLadderPoint{Wall: wall, BestCut: s.Max, MeanCut: s.Mean, MinCut: s.Min}
}

// ladderSeries converts ladder points to a (wall ns → cut) series.
func ladderSeries(name string, pts []softwareLadderPoint, pick func(softwareLadderPoint) float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for _, p := range pts {
		s.Add(float64(p.Wall.Nanoseconds()), pick(p))
	}
	return s
}
