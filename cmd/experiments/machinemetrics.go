package main

import (
	"flag"
	"fmt"

	"mbrim/internal/power"
)

func init() {
	register("machinemetrics", "Sec 2.2/6.3: area, power and energy-per-solve across machine classes", runMachineMetrics)
}

// runMachineMetrics prints the machine-metrics comparison the paper's
// introduction and Sec 6.3 argue from: die area and power of BRIM
// design points, energy per solve, and the advantage over the
// cabinet-class reference machines.
func runMachineMetrics(args []string) error {
	fs := flag.NewFlagSet("machinemetrics", flag.ContinueOnError)
	solveNS := fs.Float64("solvens", 1100, "model time per solve, ns (paper: 1.1 µs for K16384)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("# BRIM design points")
	fmt.Printf("%8s %6s %10s %9s\n", "spins", "node", "area mm²", "power W")
	for _, dp := range []struct {
		spins int
		node  float64
		ch    int
	}{
		{2000, 45, 0},
		{8192, 45, 3}, // the paper's chip
		{8192, 16, 3},
		{16384, 16, 3},
	} {
		c := power.Chip{Spins: dp.spins, Tech: power.Technology{Node: dp.node}, Channels: dp.ch}
		fmt.Printf("%8d %4.0fnm %10.1f %9.2f\n", dp.spins, dp.node, c.AreaMM2(), c.PowerW())
	}

	sys := power.System{
		Chip:  power.Chip{Spins: 8192, Tech: power.Technology{Node: 45}, Channels: 3},
		Chips: 4,
	}
	fmt.Printf("\n# 4-chip mBRIM (paper's Sec 6.3 system): %.0f mm², %.1f W, %.2g J per %.0f ns solve\n",
		sys.TotalAreaMM2(), sys.TotalPowerW(), sys.EnergyPerSolveJ(*solveNS), *solveNS)

	fmt.Println("\n# Advantage over reference machines (energy ×, time ×)")
	for _, ref := range power.References() {
		e, t := sys.AdvantageOver(ref, *solveNS)
		fmt.Printf("%-30s %10.0fx %10.0fx\n", ref.Name, e, t)
	}
	note("calibrated to the paper's quoted design point (~80 mm², <10 W at 45 nm for")
	note("8192 spins); the reference rows use the literature power/time quotes the")
	note("paper cites (D-Wave 25 kW, CIM 200 W, 8-FPGA SBM at 2.47 ms).")
	return nil
}
