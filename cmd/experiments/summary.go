package main

import (
	"flag"
	"fmt"

	"mbrim/internal/core"
	"mbrim/internal/multichip"
	"mbrim/internal/sbm"
)

func init() {
	register("summary", "headline comparisons of Secs 6.3/6.5: speedups, batch gains, traffic reduction", runSummary)
}

// runSummary measures the paper's headline claims on one scaled
// benchmark and prints them next to the paper's reported values.
func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	n := fs.Int("n", 1024, "K-graph size (paper: 16384)")
	chips := fs.Int("chips", 4, "number of chips")
	duration := fs.Float64("duration", 300, "annealing time, ns")
	epoch := fs.Float64("epoch", 3.3, "concurrent epoch, ns")
	batchEpoch := fs.Float64("batchepoch", 16, "batch epoch, ns")
	runs := fs.Int("runs", 4, "batch jobs / restarts")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, m := kgraph(*n, *seed)
	bwScale := float64(*n) / 16384

	fmt.Printf("# Summary: measured vs paper-reported headline numbers (K%d, %d chips)\n", *n, *chips)

	// 1. mBRIM_3D vs dSBM speedup at comparable quality.
	m3d := multichip.MustSystem(m, multichip.Config{
		Chips: *chips, EpochNS: *epoch, Seed: *seed, Parallel: true,
	}).RunConcurrent(*duration)
	m3dCut := g.CutFromEnergy(m3d.Energy)
	dsb := sbm.SolveBatch(m, sbm.Config{Variant: sbm.Discrete, Steps: 1000, Seed: *seed}, *runs)
	dsbCut := g.CutValue(dsb.Best.Spins)
	speedup := float64(dsb.Wall.Nanoseconds()) / m3d.ElapsedNS
	fmt.Printf("mBRIM_3D: cut %.0f in %.0f ns (machine time)\n", m3dCut, m3d.ElapsedNS)
	fmt.Printf("dSBM:     cut %.0f in %v (measured)\n", dsbCut, dsb.Wall)
	fmt.Printf("speedup (machine vs computational annealer): %.0fx   [paper: ~2200x vs 8-FPGA SBM]\n", speedup)
	note("the absolute factor depends on host CPU speed; the paper's 2200x compares modeled")
	note("45nm silicon to an 8-FPGA cluster. The shape to check: mBRIM reaches >= dSBM's")
	note("cut in orders of magnitude less time. Here: quality ratio %.3f, time ratio %.0fx.",
		m3dCut/dsbCut, speedup)

	// 2. Batch-mode gain under constrained bandwidth.
	for _, tier := range []struct {
		name string
		rate float64
	}{
		{"mBRIM_HB", core.HBChannelBytesPerNS * bwScale},
		{"mBRIM_LB", core.LBChannelBytesPerNS * bwScale},
	} {
		conc := multichip.MustSystem(m, multichip.Config{
			Chips: *chips, EpochNS: *epoch, Seed: *seed, ChannelBytesPerNS: tier.rate,
		}).RunConcurrent(*duration)
		// Batch: chips×duration of elapsed time yields `runs` finished
		// jobs; the throughput comparison divides by the job count.
		batch := multichip.MustSystem(m, multichip.Config{
			Chips: *chips, EpochNS: *batchEpoch, Seed: *seed, ChannelBytesPerNS: tier.rate,
		}).RunBatch(*runs, *duration*float64(*chips))
		perJob := batch.ElapsedNS / float64(*runs)
		gain := conc.ElapsedNS / perJob
		fmt.Printf("%s: concurrent %.0f ns/job (stall %.0f); batch %.0f ns/job (stall %.0f) -> batch %.2fx throughput\n",
			tier.name, conc.ElapsedNS, conc.StallNS, perJob, batch.StallNS, gain)
		fmt.Printf("%s: cut concurrent %.0f vs batch %.0f\n",
			tier.name, g.CutFromEnergy(conc.Energy), g.CutFromEnergy(batch.BestEnergy))
	}
	note("[paper: batch mode finishes 2.8x faster on HB and 7x faster on LB, with slightly")
	note("reduced but still SBM-beating quality]")

	// 3. Traffic reduction stack: long epochs + coordination.
	shortE := multichip.MustSystem(m, multichip.Config{
		Chips: *chips, EpochNS: 0.5, Seed: *seed,
	}).RunConcurrent(*duration)
	longB := multichip.MustSystem(m, multichip.Config{
		Chips: *chips, EpochNS: *batchEpoch, Seed: *seed, Coordinated: true,
	}).RunBatch(*runs, *duration)
	fmt.Printf("traffic: sub-ns-epoch concurrent %.0f B vs coordinated long-epoch batch %.0f B -> %.1fx reduction\n",
		shortE.TrafficBytes, longB.TrafficBytes, shortE.TrafficBytes/maxf(longB.TrafficBytes, 1))
	fmt.Printf("peak demand: %.2f B/ns per chip (short epochs) vs %.2f B/ns (batch)\n",
		shortE.PeakDemandBytesPerNS, longB.PeakDemandBytesPerNS)
	note("[paper: 4-5x from batch epochs, ~1.5x from coordinated flips, ~20x total demand")
	note("reduction from 4 TB/s to 218 GB/s]")
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
