package main

import (
	"flag"
	"fmt"

	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
)

func init() {
	register("fig15", "induced spin flips vs bit changes; savings from coordinated PRNGs", runFig15)
}

// runFig15 reproduces Fig 15. Left panel: induced flips and bit
// changes per epoch over a run at a fixed epoch size, with the share
// of bit changes attributable to induced flips. Right panel: that
// share versus epoch size. The share is the traffic a coordinated
// PRNG eliminates (Sec 5.4.2); the figure closes with a measured
// coordinated-vs-uncoordinated traffic comparison.
func runFig15(args []string) error {
	fs := flag.NewFlagSet("fig15", flag.ContinueOnError)
	n := fs.Int("n", 512, "K-graph size")
	chips := fs.Int("chips", 4, "number of chips")
	duration := fs.Float64("duration", 200, "annealing time, ns")
	epoch := fs.Float64("epoch", 3.3, "fixed epoch for the time series, ns")
	seed := fs.Uint64("seed", 1, "random seed")
	tracePath := traceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tracer, closeTrace, err := openTrace(*tracePath)
	if err != nil {
		return err
	}
	defer closeTrace()
	_, m := kgraph(*n, *seed)

	res := multichip.MustSystem(m, multichip.Config{
		Chips: *chips, EpochNS: *epoch, Seed: *seed, Parallel: true, RecordEpochStats: true,
		Tracer: tracer,
	}).RunConcurrent(*duration)

	inducedSeries := &metrics.Series{Name: fmt.Sprintf("induced flips per epoch (epoch %.1f ns)", *epoch)}
	changes := &metrics.Series{Name: "bit changes per epoch"}
	share := &metrics.Series{Name: "induced share of bit changes (%)"}
	for _, st := range res.EpochStats {
		t := float64(st.Epoch) * *epoch
		inducedSeries.Add(t, float64(st.InducedFlips))
		changes.Add(t, float64(st.BitChanges))
		if st.BitChanges > 0 {
			share.Add(t, 100*float64(st.InducedBitChanges)/float64(st.BitChanges))
		}
	}

	shareVsEpoch := &metrics.Series{Name: "avg induced share vs epoch size (%)"}
	for _, e := range []float64{0.5, 1, 2, 3.3, 5, 8, 12, 20} {
		r := multichip.MustSystem(m, multichip.Config{
			Chips: *chips, EpochNS: e, Seed: *seed, Parallel: true,
		}).RunConcurrent(*duration)
		if r.BitChanges > 0 {
			shareVsEpoch.Add(e, 100*float64(r.InducedBitChanges)/float64(r.BitChanges))
		}
	}

	fmt.Print(metrics.Table("Fig 15: induced flips and bit changes", inducedSeries, changes, share, shareVsEpoch))

	// Measured end-to-end saving from coordination.
	plain := multichip.MustSystem(m, multichip.Config{
		Chips: *chips, EpochNS: *epoch, Seed: *seed, Parallel: true,
	}).RunConcurrent(*duration)
	coord := multichip.MustSystem(m, multichip.Config{
		Chips: *chips, EpochNS: *epoch, Seed: *seed, Coordinated: true,
	}).RunConcurrent(*duration)
	saving := 0.0
	if plain.TrafficBytes > 0 {
		saving = 100 * (1 - coord.TrafficBytes/plain.TrafficBytes)
	}
	note("measured traffic: uncoordinated %.0f B, coordinated %.0f B (saving %.1f%%).",
		plain.TrafficBytes, coord.TrafficBytes, saving)
	note("expected shape (paper): 30-38%% of bit changes are induced flips across epoch")
	note("sizes, so coordinating PRNGs cuts communication by that share (~1.5x speedup")
	note("in a bandwidth-bound system).")
	return nil
}
