package main

import (
	"flag"
	"fmt"

	"mbrim/internal/brim"
	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
)

func init() {
	register("macrochip", "Sec 5.4.1: monolithic vs concurrent vs sequential multiprocessor quality", runMacrochip)
}

// runMacrochip tests the architectural-equivalence claims around the
// macrochip discussion: a short-epoch concurrent multiprocessor should
// match (a) a monolithic machine of the same total capacity — the
// macrochip it digitally replaces — and (b) the zero-ignorance
// sequential baseline, while being chips× faster than the latter.
func runMacrochip(args []string) error {
	fs := flag.NewFlagSet("macrochip", flag.ContinueOnError)
	n := fs.Int("n", 256, "K-graph size")
	chips := fs.Int("chips", 4, "number of chips")
	duration := fs.Float64("duration", 150, "annealing time, ns")
	runs := fs.Int("runs", 5, "averaging runs")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, m := kgraph(*n, *seed)

	type row struct {
		name              string
		avgCut, elapsedNS float64
	}
	var rows []row
	add := func(name string, cut, elapsed float64) {
		rows = append(rows, row{name, cut, elapsed})
	}

	var monoSum, concSum, seqSum, concElapsed, seqElapsed float64
	for i := 0; i < *runs; i++ {
		s := *seed + uint64(100*i)
		mono := brim.Solve(m, brim.SolveConfig{Duration: *duration, Config: brim.Config{Seed: s}})
		monoSum += g.CutFromEnergy(mono.Energy)

		conc := multichip.MustSystem(m, multichip.Config{
			Chips: *chips, Seed: s, EpochNS: 1, Parallel: true,
		}).RunConcurrent(*duration)
		concSum += g.CutFromEnergy(conc.Energy)
		concElapsed += conc.ElapsedNS

		seq := multichip.MustSystem(m, multichip.Config{
			Chips: *chips, Seed: s, EpochNS: 1,
		}).RunSequential(*duration)
		seqSum += g.CutFromEnergy(seq.Energy)
		seqElapsed += seq.ElapsedNS
	}
	r := float64(*runs)
	add("monolithic macrochip (1 big machine)", monoSum/r, *duration)
	add(fmt.Sprintf("%d-chip concurrent, 1 ns epochs", *chips), concSum/r, concElapsed/r)
	add(fmt.Sprintf("%d-chip sequential (zero ignorance)", *chips), seqSum/r, seqElapsed/r)

	series := &metrics.Series{Name: "avg cut (x = elapsed ns)"}
	fmt.Printf("# Macrochip equivalence on K%d (%d runs averaged)\n", *n, *runs)
	for _, row := range rows {
		fmt.Printf("%-42s cut %8.0f  elapsed %8.0f ns\n", row.name, row.avgCut, row.elapsedNS)
		series.Add(row.elapsedNS, row.avgCut)
	}
	fmt.Print(metrics.Table("macrochip comparison", series))
	note("expected (Sec 5.4.1): all three land at comparable quality; the concurrent")
	note("multiprocessor matches the monolithic machine's speed while the sequential")
	note("baseline pays %dx elapsed time for the same annealing.", *chips)
	return nil
}
