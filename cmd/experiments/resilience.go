package main

import (
	"flag"
	"fmt"

	"mbrim/internal/fault"
	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
)

func init() {
	register("resilience", "quality and TTS vs fabric fault rate, with and without recovery", runResilience)
}

// runResilience quantifies what the fault-injection layer is for: how
// the multiprocessor's solution quality and time-to-solution degrade
// as the fabric gets lossier, and how much of that degradation each
// recovery policy buys back — at its honest cost in retransmit traffic
// and recovery stall. Three tables:
//
//  1. message-drop sweep: cut and elapsed vs drop rate, bare vs
//     CRC-detect+retransmit vs detect+watchdog;
//  2. the recovery bill: retransmit/resync traffic and stall at each
//     drop rate (nothing is free);
//  3. chip loss: quality when a chip dies mid-run, frozen-slice vs
//     graceful repartition onto the survivors.
func runResilience(args []string) error {
	fs := flag.NewFlagSet("resilience", flag.ContinueOnError)
	n := fs.Int("n", 512, "K-graph size")
	chips := fs.Int("chips", 4, "multiprocessor chips")
	duration := fs.Float64("duration", 200, "annealing time, ns")
	seed := fs.Uint64("seed", 1, "problem/system seed")
	schedules := fs.Int("schedules", 3, "fault schedules averaged per point")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, m := kgraph(*n, *seed)

	type policy struct {
		name string
		rec  fault.Recovery
	}
	policies := []policy{
		{"bare", fault.Recovery{}},
		{"detect", fault.Recovery{Detect: true}},
		{"detect+watchdog", fault.Recovery{Detect: true, WatchdogThreshold: 0.05}},
	}
	rates := []float64{0, 0.05, 0.1, 0.2, 0.4}

	run := func(rec fault.Recovery, drop float64, fseed uint64) *multichip.Result {
		return multichip.MustSystem(m, multichip.Config{
			Chips: *chips, Seed: *seed, Parallel: true,
			Faults: fault.Config{
				Seed:     fseed,
				DropRate: drop,
				Recovery: rec,
			},
		}).RunConcurrent(*duration)
	}

	note("degradation curves: cut quality vs message-drop rate, %d schedules per point", *schedules)
	note("expectation: bare quality falls with drop rate (silent shadow staleness);")
	note("detection holds quality but pays elapsed time; the watchdog backstops heavy loss")
	quality := make([]*metrics.Series, len(policies))
	elapsed := make([]*metrics.Series, len(policies))
	bill := &metrics.Series{Name: "recovery bill: retransmit+resync bytes vs drop rate (detect+watchdog)"}
	stallBill := &metrics.Series{Name: "recovery bill: recovery stall ns vs drop rate (detect+watchdog)"}
	for pi, p := range policies {
		quality[pi] = &metrics.Series{Name: fmt.Sprintf("cut vs drop rate (%s)", p.name)}
		elapsed[pi] = &metrics.Series{Name: fmt.Sprintf("elapsed ns vs drop rate (%s)", p.name)}
		for _, rate := range rates {
			var cut, el, rbytes, rstall float64
			for s := 0; s < *schedules; s++ {
				res := run(p.rec, rate, uint64(s+1))
				cut += g.CutFromEnergy(res.Energy)
				el += res.ElapsedNS
				rbytes += res.FaultStats.RetransmitBytes + res.FaultStats.ResyncBytes
				rstall += res.FaultStats.RecoveryStallNS
			}
			k := float64(*schedules)
			quality[pi].Add(rate, cut/k)
			elapsed[pi].Add(rate, el/k)
			if p.name == "detect+watchdog" {
				bill.Add(rate, rbytes/k)
				stallBill.Add(rate, rstall/k)
			}
		}
	}
	fmt.Print(metrics.Table("Resilience: degradation vs drop rate",
		quality[0], quality[1], quality[2],
		elapsed[0], elapsed[1], elapsed[2],
		bill, stallBill))

	// Chip loss: one chip dies a quarter of the way in. Without
	// recovery its slice freezes (the survivors keep annealing against
	// a dead neighborhood); with repartition the survivors absorb the
	// slice and keep optimizing all of it.
	note("chip loss at 25%% of the run: frozen slice vs repartition onto survivors")
	lossEpoch := 1 + int(*duration/3.3/4)
	loss := &metrics.Series{Name: "chip loss: cut (x=0 no loss, x=1 frozen slice, x=2 repartition)"}
	lossTime := &metrics.Series{Name: "chip loss: elapsed ns (same x)"}
	baseline := multichip.MustSystem(m, multichip.Config{
		Chips: *chips, Seed: *seed, Parallel: true,
	}).RunConcurrent(*duration)
	loss.Add(0, g.CutFromEnergy(baseline.Energy))
	lossTime.Add(0, baseline.ElapsedNS)
	for i, rec := range []fault.Recovery{{}, {Repartition: true}} {
		res := multichip.MustSystem(m, multichip.Config{
			Chips: *chips, Seed: *seed, Parallel: true,
			Faults: fault.Config{Seed: 1, ChipLossEpoch: lossEpoch, ChipLossChip: 0, Recovery: rec},
		}).RunConcurrent(*duration)
		loss.Add(float64(i+1), g.CutFromEnergy(res.Energy))
		lossTime.Add(float64(i+1), res.ElapsedNS)
		note("policy %d: live chips at end = %d, repartitions = %d, recovery stall = %.1f ns",
			i+1, res.LiveChips, res.FaultStats.Repartitions, res.FaultStats.RecoveryStallNS)
	}
	fmt.Print(metrics.Table("Resilience: chip loss", loss, lossTime))
	return nil
}
