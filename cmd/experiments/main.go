// Command experiments regenerates every figure of the paper's
// evaluation (Figs 1, 9, 11, 12, 13, 14, 15), the first-principles
// numbers of Sec 6.4.1 and the headline summary of Secs 6.3/6.5.
//
// Usage:
//
//	experiments <subcommand> [flags]
//
// Subcommands: fig1, fig9, fig11, fig12, fig13, fig14, fig15,
// firstprinciples, summary, all.
//
// Every subcommand defaults to a scaled-down problem size so the whole
// suite completes in minutes on a laptop; pass -n (and friends) to
// approach paper-scale inputs, for which the authors themselves
// budgeted days of simulation (Sec 6.1). Output is plain text: one
// "# figure" header, one "## series:" block per line of the figure,
// and paper-expectation commentary prefixed with "#?" so downstream
// tooling can strip it.
package main

import (
	"fmt"
	"os"
	"sort"
)

// command is one registered subcommand.
type command struct {
	name    string
	summary string
	run     func(args []string) error
}

var commands = map[string]*command{}

func register(name, summary string, run func(args []string) error) {
	commands[name] = &command{name: name, summary: summary, run: run}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "all" {
		names := make([]string, 0, len(commands))
		for n := range commands {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("\n===== %s =====\n", n)
			if err := commands[n].run(nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
				os.Exit(1)
			}
		}
		return
	}
	cmd, ok := commands[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n\n", name)
		usage()
		os.Exit(2)
	}
	if err := cmd.run(os.Args[2:]); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments <subcommand> [flags]")
	fmt.Fprintln(os.Stderr, "\nsubcommands:")
	names := make([]string, 0, len(commands))
	for n := range commands {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", n, commands[n].summary)
	}
	fmt.Fprintln(os.Stderr, "  all              run every experiment with defaults")
}
