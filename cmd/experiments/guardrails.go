package main

import (
	"context"
	"errors"
	"flag"
	"fmt"

	"mbrim/internal/brim"
	"mbrim/internal/core"
	"mbrim/internal/ising"
	"mbrim/internal/metrics"
	"mbrim/internal/obs"
)

func init() {
	register("guardrails", "numerical guardrails and interrupt/resume lifecycle", runGuardrails)
}

// cancelAtEpoch is a tracer that cancels a context when the
// multiprocessor reaches a chosen epoch barrier — a deterministic way
// to interrupt a run mid-flight, unlike a wall-clock timeout.
type cancelAtEpoch struct {
	epoch  int
	cancel context.CancelFunc
}

func (t *cancelAtEpoch) Emit(e obs.Event) {
	if e.Kind == obs.EpochSync && e.Epoch >= t.epoch {
		t.cancel()
	}
}

// runGuardrails demonstrates the solve-lifecycle hardening on two
// fronts:
//
//  1. a bias-magnitude sweep that drives the BRIM integrator from
//     clean steps through the step-halving guardrail and into a typed
//     divergence error — never NaN spins;
//  2. a deterministic interrupt of a multiprocessor run at a chosen
//     epoch, checkpoint capture, and a resume whose final energy is
//     bit-identical to the uninterrupted run.
func runGuardrails(args []string) error {
	fs := flag.NewFlagSet("guardrails", flag.ContinueOnError)
	n := fs.Int("n", 256, "K-graph size for the lifecycle demonstration")
	chips := fs.Int("chips", 4, "multiprocessor chips")
	duration := fs.Float64("duration", 100, "annealing time, ns")
	cutEpoch := fs.Int("cut-epoch", 3, "epoch at which the lifecycle run is interrupted")
	seed := fs.Uint64("seed", 1, "problem/system seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Part 1: the divergence ladder. Zero couplings leave the coupling
	// normalization at identity, so the bias term alone sets the RK4
	// slope: moderate magnitudes step cleanly, larger ones overshoot
	// the blowup limit and are rescued by halved-dt retries, and past
	// the guardrail's budget the run fails with a typed error whose
	// diagnostics name the node and the step sizes tried.
	note("divergence ladder: bias magnitude vs integrator outcome (clean / retries / typed error)")
	note("expectation: retries rise with |h| until the halving budget is exhausted; no NaN anywhere")
	retries := &metrics.Series{Name: "guardrail retries vs log10|h|"}
	for _, exp := range []int{0, 6, 7, 8, 9, 10, 12, 14} {
		h := 1.0
		for i := 0; i < exp; i++ {
			h *= 10
		}
		m := ising.NewModel(8)
		for i := 0; i < m.N(); i++ {
			m.SetBias(i, h)
		}
		res, err := brim.SolveCtx(context.Background(), m, brim.SolveConfig{
			Duration: 10,
			Config:   brim.Config{Seed: *seed},
		})
		var div *brim.DivergenceError
		switch {
		case errors.As(err, &div):
			fmt.Printf("|h|=1e%-3d diverged: node %d at t=%.3g ns after %d step size(s)\n",
				exp, div.Node, div.TimeNS, len(div.DtHistory))
		case err != nil:
			return err
		default:
			fmt.Printf("|h|=1e%-3d ok: energy %.4g, %d halved-step retries\n",
				exp, res.Energy, res.StepRetries)
			retries.Add(float64(exp), float64(res.StepRetries))
		}
	}
	fmt.Print(metrics.Table("Guardrails: step-halving retries", retries))

	// Part 2: interrupt, checkpoint, resume. The tracer cancels the
	// context at an epoch barrier; the InterruptedError carries both
	// the best-so-far outcome and resume bytes. Feeding those bytes
	// back must land on exactly the uninterrupted run's energy.
	g, m := kgraph(*n, *seed)
	req := core.Request{
		Kind:       core.MBRIMConcurrent,
		Model:      m,
		Graph:      g,
		Seed:       *seed,
		Chips:      *chips,
		DurationNS: *duration,
	}
	full, err := core.Solve(req)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ireq := req
	ireq.Tracer = &cancelAtEpoch{epoch: *cutEpoch, cancel: cancel}
	_, err = core.SolveCtx(ctx, ireq)
	var intr *core.InterruptedError
	if !errors.As(err, &intr) {
		return fmt.Errorf("expected an interruption at epoch %d, got %v", *cutEpoch, err)
	}
	note("lifecycle: run interrupted at epoch %d with best-so-far energy %.0f (%d checkpoint bytes)",
		*cutEpoch, intr.Outcome.Energy, len(intr.Checkpoint))

	rreq := req
	rreq.Resume = intr.Checkpoint
	resumed, err := core.Solve(rreq)
	if err != nil {
		return err
	}
	fmt.Printf("uninterrupted: cut %.0f, energy %.0f\n", full.Cut, full.Energy)
	fmt.Printf("interrupted+resumed: cut %.0f, energy %.0f\n", resumed.Cut, resumed.Energy)
	if resumed.Energy != full.Energy {
		return fmt.Errorf("resume broke determinism: %.17g != %.17g", resumed.Energy, full.Energy)
	}
	note("expectation: the two lines above are identical — resume is bit-exact")
	return nil
}
