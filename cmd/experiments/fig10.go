package main

import (
	"flag"
	"fmt"
)

func init() {
	register("fig10", "batch-mode staggering schedule: which chip works which job each epoch", runFig10)
}

// runFig10 renders the staggering schedule of Fig 10: in batch mode,
// epoch e assigns chip c to job (c + e) mod jobs, so viewed vertically
// each job walks across the chips (its slices anneal in turn) and
// viewed horizontally every chip is always busy on a different job.
// The same rotation drives multichip.System.RunBatch; this subcommand
// verifies its two defining properties and prints the grid.
func runFig10(args []string) error {
	fs := flag.NewFlagSet("fig10", flag.ContinueOnError)
	chips := fs.Int("chips", 4, "number of chips")
	jobs := fs.Int("jobs", 4, "number of staggered jobs")
	epochs := fs.Int("epochs", 8, "epochs to display")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chips < 1 || *jobs < 1 || *epochs < 1 {
		return fmt.Errorf("all arguments must be positive")
	}

	fmt.Printf("# Fig 10: batch staggering, %d chips × %d jobs\n", *chips, *jobs)
	fmt.Printf("%8s", "epoch")
	for c := 0; c < *chips; c++ {
		fmt.Printf("  chip%d", c)
	}
	fmt.Println()
	for e := 0; e < *epochs; e++ {
		fmt.Printf("%8d", e+1)
		for c := 0; c < *chips; c++ {
			fmt.Printf("   job%d", (c+e)%*jobs)
		}
		fmt.Println()
	}

	// Property 1: when jobs >= chips, no two chips share a job within
	// an epoch (each job's state is touched by at most one worker).
	if *jobs >= *chips {
		for e := 0; e < *epochs; e++ {
			seen := map[int]bool{}
			for c := 0; c < *chips; c++ {
				j := (c + e) % *jobs
				if seen[j] {
					return fmt.Errorf("epoch %d assigns job %d twice", e, j)
				}
				seen[j] = true
			}
		}
		note("within every epoch each chip works a distinct job — states never conflict.")
	}
	// Property 2: over jobs consecutive epochs, every job visits every
	// chip exactly once (all of its slices get annealed).
	if *jobs == *chips {
		for j := 0; j < *jobs; j++ {
			visited := map[int]bool{}
			for e := 0; e < *chips; e++ {
				for c := 0; c < *chips; c++ {
					if (c+e)%*jobs == j {
						visited[c] = true
					}
				}
			}
			if len(visited) != *chips {
				return fmt.Errorf("job %d visited only %d chips in %d epochs", j, len(visited), *chips)
			}
		}
		note("over %d consecutive epochs every job visits every chip once — full", *chips)
		note("coverage of its spin slices, with only O(N) state moving per boundary.")
	}
	return nil
}
