package main

import (
	"flag"
	"fmt"

	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
)

func init() {
	register("fig14", "solution quality vs epoch size: concurrent vs batch", runFig14)
}

// runFig14 reproduces Fig 14: average MaxCut quality as a function of
// epoch size for both operating modes. Concurrent mode degrades as
// epochs grow (global-state ignorance builds up); batch mode, whose
// epochs create no ignorance, degrades only slightly.
func runFig14(args []string) error {
	fs := flag.NewFlagSet("fig14", flag.ContinueOnError)
	n := fs.Int("n", 512, "K-graph size")
	chips := fs.Int("chips", 4, "number of chips")
	duration := fs.Float64("duration", 200, "annealing time, ns")
	runs := fs.Int("runs", 4, "averaging runs per point (and batch jobs)")
	seed := fs.Uint64("seed", 1, "random seed")
	tracePath := traceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tracer, closeTrace, err := openTrace(*tracePath)
	if err != nil {
		return err
	}
	defer closeTrace()
	g, m := kgraph(*n, *seed)

	conc := &metrics.Series{Name: "concurrent mode (avg cut)"}
	batch := &metrics.Series{Name: "batch mode (avg best cut)"}
	epochs := []float64{1, 2, 3.3, 5, 8, 12, 20, 33, 50}
	for _, e := range epochs {
		var cSum, bSum float64
		for r := 0; r < *runs; r++ {
			s := uint64(int(*seed) + r*101)
			cRes := multichip.MustSystem(m, multichip.Config{
				Chips: *chips, EpochNS: e, Seed: s, Parallel: true, Tracer: tracer,
			}).RunConcurrent(*duration)
			cSum += g.CutFromEnergy(cRes.Energy)
			bRes := multichip.MustSystem(m, multichip.Config{
				Chips: *chips, EpochNS: e, Seed: s, Parallel: true, Tracer: tracer,
			}).RunBatch(*runs, *duration)
			bSum += g.CutFromEnergy(bRes.BestEnergy)
		}
		conc.Add(e, cSum/float64(*runs))
		batch.Add(e, bSum/float64(*runs))
	}

	fmt.Print(metrics.Table("Fig 14: average cut vs epoch size (ns)", conc, batch))
	first, last := conc.Points[0].Y, conc.Points[len(conc.Points)-1].Y
	bFirst, bLast := batch.Points[0].Y, batch.Points[len(batch.Points)-1].Y
	note("concurrent: %.0f at %.1f ns epochs -> %.0f at %.0f ns (drop %.1f%%).",
		first, epochs[0], last, epochs[len(epochs)-1], 100*(first-last)/first)
	note("batch:      %.0f -> %.0f (drop %.1f%%).", bFirst, bLast, 100*(bFirst-bLast)/bFirst)
	note("expected shape (paper): best quality is concurrent mode at small epochs; its")
	note("quality falls quickly and significantly with epoch size, while batch mode's")
	note("reduces only very slightly — making batch the mode of choice when bandwidth")
	note("constraints force long epochs.")
	return nil
}
