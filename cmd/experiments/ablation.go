package main

import (
	"flag"
	"fmt"

	"mbrim/internal/brim"
	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
	"mbrim/internal/pt"
	"mbrim/internal/sa"
)

func init() {
	register("ablation", "design-choice ablations: chip count, integrator, coordination, solver tier", runAblation)
}

// runAblation quantifies the design choices DESIGN.md calls out, on
// one benchmark, in one table each.
func runAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ContinueOnError)
	n := fs.Int("n", 512, "K-graph size")
	duration := fs.Float64("duration", 200, "annealing time, ns")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, m := kgraph(*n, *seed)

	// 1. Chip count at fixed problem size: quality should hold while
	// per-chip area shrinks — the scalability claim in miniature.
	chips := &metrics.Series{Name: "cut vs chip count (fixed N, epoch 3.3)"}
	for _, k := range []int{1, 2, 4, 8} {
		res := multichip.MustSystem(m, multichip.Config{
			Chips: k, Seed: *seed, Parallel: true,
		}).RunConcurrent(*duration)
		chips.Add(float64(k), g.CutFromEnergy(res.Energy))
	}

	// 2. Integrator: RK4 (paper's method) vs forward Euler at equal dt.
	integ := &metrics.Series{Name: "integrator: cut (x=0 RK4, x=1 Euler)"}
	{
		ma := brim.New(m, brim.Config{Seed: *seed})
		ma.SetHorizon(*duration)
		ma.Run(*duration)
		integ.Add(0, g.CutValue(ma.Spins()))
		me := brim.New(m, brim.Config{Seed: *seed})
		me.SetHorizon(*duration)
		me.RunEuler(*duration)
		integ.Add(1, g.CutValue(me.Spins()))
	}

	// 3. Coordination: traffic and quality, kicks identical.
	coord := &metrics.Series{Name: "coordination: traffic bytes (x=0 off, x=1 on)"}
	coordQ := &metrics.Series{Name: "coordination: cut (x=0 off, x=1 on)"}
	for i, on := range []bool{false, true} {
		res := multichip.MustSystem(m, multichip.Config{
			Chips: 4, Seed: *seed, Coordinated: on,
		}).RunConcurrent(*duration)
		coord.Add(float64(i), res.TrafficBytes)
		coordQ.Add(float64(i), g.CutFromEnergy(res.Energy))
	}

	// 4. Software solver tier at a fixed sweep budget: SA restarts vs
	// parallel tempering (the beyond-the-paper baseline).
	tier := &metrics.Series{Name: "software tier: cut (x=0 SA×8, x=1 PT 8 replicas)"}
	saRes := sa.SolveBatch(m, sa.Config{Sweeps: 150, Seed: *seed}, 8)
	tier.Add(0, g.CutValue(saRes.Best.Spins))
	ptRes := pt.Solve(m, pt.Config{Replicas: 8, Sweeps: 150, Seed: *seed})
	tier.Add(1, g.CutValue(ptRes.Spins))

	fmt.Print(metrics.Table("Ablations (DESIGN.md Sec 5)", chips, integ, coord, coordQ, tier))
	note("chip count: slicing one problem over more chips should cost little quality —")
	note("that is the architecture's reason to exist.")
	note("integrator: RK4 and Euler should agree qualitatively at this dt; RK4 is the")
	note("paper's method and the default.")
	note("coordination: traffic drops at equal quality (the kicks are identical draws).")
	return nil
}
