package main

import (
	"flag"
	"fmt"

	"mbrim/internal/embed"
	"mbrim/internal/graph"
	"mbrim/internal/metrics"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
)

func init() {
	register("capacity", "Sec 4.1.1: nominal vs effective capacity of local-coupling machines", runCapacity)
}

// runCapacity quantifies the observation behind the paper's focus on
// all-to-all architectures: a machine with only local coupling needs
// O(n²) physical nodes to host an n-spin general problem, so its
// effective capacity grows as √N — "a nominal 2000 nodes on the
// D-Wave 2000q is equivalent to only about 64 effective nodes".
func runCapacity(args []string) error {
	fs := flag.NewFlagSet("capacity", flag.ContinueOnError)
	maxLogical := fs.Int("maxn", 24, "largest logical problem to embed and anneal")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Panel 1: effective capacity vs nominal node count, for the
	// degree-3 crossbar scheme and for D-Wave's chimera (shore 4).
	capSeries := &metrics.Series{Name: "effective capacity vs nominal nodes (crossbar chains)"}
	chimeraSeries := &metrics.Series{Name: "effective capacity vs nominal qubits (chimera, shore 4)"}
	for _, phys := range []int{64, 256, 1024, 2048, 8192, 32768} {
		capSeries.Add(float64(phys), float64(embed.EffectiveCapacity(phys)))
		chimeraSeries.Add(float64(phys), float64(embed.ChimeraCapacity(phys, 4)))
	}

	// Panel 2: physical nodes consumed per logical problem size, plus
	// end-to-end embedded-vs-native annealing quality.
	blowup := &metrics.Series{Name: "physical nodes needed vs logical n"}
	quality := &metrics.Series{Name: "embedded/native cut ratio (SA)"}
	for n := 8; n <= *maxLogical; n += 4 {
		g := graph.Complete(n, rng.New(*seed+uint64(n)))
		m := g.ToIsing()
		e := embed.Complete(m, 0)
		blowup.Add(float64(n), float64(e.PhysicalNodes()))

		native := sa.SolveBatch(m, sa.Config{Sweeps: 300, Seed: *seed}, 5)
		embedded := sa.SolveBatch(e.Physical, sa.Config{Sweeps: 300, Seed: *seed}, 5)
		decoded := e.Decode(embedded.Best.Spins)
		nCut := g.CutValue(native.Best.Spins)
		eCut := g.CutValue(decoded)
		if nCut != 0 {
			quality.Add(float64(n), eCut/nCut)
		}
	}

	fmt.Print(metrics.Table("Capacity: local-coupling machines (Sec 4.1.1)", capSeries, chimeraSeries, blowup, quality))
	note("chimera C_16 (2048 qubits, the D-Wave 2000q) hosts K%d — the paper's", embed.ChimeraCapacity(2048, 4))
	note("\"nominal 2000 ≈ 64 effective nodes\", reproduced exactly; the degree-3")
	note("crossbar chains host K%d on the same budget. Both scale as √N.", embed.EffectiveCapacity(2048))
	note("expected shape: physical demand grows quadratically in logical size, and")
	note("embedded annealing quality trails native all-to-all annealing at equal effort.")
	return nil
}
