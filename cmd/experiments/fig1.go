package main

import (
	"flag"
	"fmt"

	"mbrim/internal/brim"
	"mbrim/internal/dnc"
	"mbrim/internal/metrics"
	"mbrim/internal/sa"
)

func init() {
	register("fig1", "speedup of divide-and-conquer as the problem outgrows the machine", runFig1)
}

// runFig1 reproduces Fig 1: a fixed-capacity Ising machine glued by
// qbsolv (Algorithm 1) or the paper's d&c (Algorithm 2), speedup over
// a sequential SA solver as the graph grows past machine capacity.
//
// Within capacity the problem maps directly (program once, anneal);
// past capacity every pass pays tabu/SA glue on the host, and the
// speedup collapses by orders of magnitude — the paper's motivating
// cliff.
func runFig1(args []string) error {
	fs := flag.NewFlagSet("fig1", flag.ContinueOnError)
	cap := fs.Int("cap", 100, "Ising machine capacity in spins (paper: 500)")
	maxN := fs.Int("maxn", 0, "largest graph (default 1.4×cap)")
	step := fs.Int("step", 0, "graph size step (default cap/10)")
	saSweeps := fs.Int("sasweeps", 300, "SA reference sweeps")
	saRuns := fs.Int("saruns", 5, "SA reference restarts")
	annealNS := fs.Float64("annealns", 1000, "machine anneal time per launch, ns")
	programNS := fs.Float64("programns", 100, "machine reprogram time per launch, ns")
	real := fs.Bool("real", false, "use the full BRIM dynamical-system machine instead of the SA-quality proxy (slow)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxN == 0 {
		*maxN = *cap * 14 / 10
	}
	if *step == 0 {
		*step = *cap / 10
	}

	qb := &metrics.Series{Name: "qbsolv (D-Wave d&c)"}
	ours := &metrics.Series{Name: "ours (Algorithm 2)"}
	quality := &metrics.Series{Name: "quality ratio qbsolv/SA (cut)"}

	for n := *step; n <= *maxN; n += *step {
		g, m := kgraph(n, *seed+uint64(n))

		// Reference: sequential SA on the whole problem, batch of
		// restarts, measured wall time.
		ref := sa.SolveBatch(m, sa.Config{Sweeps: *saSweeps, Seed: *seed}, *saRuns)
		refNS := float64(ref.Wall.Nanoseconds())
		refCut := g.CutValue(ref.Best.Spins)

		var mach dnc.Machine = &dnc.ProxyMachine{Cap: *cap, AnnealNS: *annealNS, Program: *programNS, Sweeps: 60}
		if *real {
			mach = &dnc.BRIMMachine{
				Cap:     *cap,
				Cfg:     brim.SolveConfig{Duration: *annealNS},
				Program: *programNS,
			}
		}

		var qbNS, oursNS, qbCut float64
		if n <= *cap {
			// The problem fits: program once, anneal the batch. No glue.
			qbNS = *programNS + float64(*saRuns)*(*annealNS)
			oursNS = qbNS
			sol, _ := mach.Anneal(m, nil, *seed)
			qbCut = g.CutValue(sol)
		} else {
			qres := dnc.QBSolv(m, mach, dnc.QBSolvConfig{Seed: *seed})
			ores := dnc.Ours(m, mach, dnc.OursConfig{Seed: *seed})
			qbNS = qres.TotalNS()
			oursNS = ores.TotalNS()
			qbCut = g.CutValue(qres.Spins)
		}
		qb.Add(float64(n), refNS/qbNS)
		ours.Add(float64(n), refNS/oursNS)
		if refCut != 0 {
			quality.Add(float64(n), qbCut/refCut)
		}
	}

	fmt.Print(metrics.Table("Fig 1: d&c speedup over sequential SA vs graph size", qb, ours, quality))
	note("expected shape (paper, 500-spin machine): speedup grows while the problem")
	note("fits the machine, then crashes by orders of magnitude one step past capacity")
	note("(~600,000x at n=500 down to ~250x at n=520); 'ours' only slightly better.")
	note("machine capacity here: %d spins; cliff should appear just past n=%d.", *cap, *cap)
	return nil
}
