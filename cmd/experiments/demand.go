package main

import (
	"flag"
	"fmt"

	"mbrim/internal/brim"
	"mbrim/internal/interconnect"
	"mbrim/internal/metrics"
)

func init() {
	register("demand", "Sec 5.3: raw communication demand over the annealing schedule", runDemand)
}

// runDemand measures the flip-rate profile of a single BRIM chip at
// flip-event resolution and converts it to the broadcast bandwidth a
// multiprocessor of the given size would need if every flip were
// communicated — the f_s·N·log(N) analysis of Sec 5.3, including the
// observation that peak demand lands at the start of the schedule.
func runDemand(args []string) error {
	fs := flag.NewFlagSet("demand", flag.ContinueOnError)
	n := fs.Int("n", 512, "chip size in spins (paper: 8000)")
	chips := fs.Int("chips", 16, "multiprocessor size for the bandwidth projection")
	duration := fs.Float64("duration", 200, "annealing time, ns")
	bucket := fs.Float64("bucket", 5, "histogram bucket, ns")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, m := kgraph(*n, *seed)

	buckets := int(*duration / *bucket)
	counts := make([]int64, buckets+1)
	ma := brim.New(m, brim.Config{Seed: *seed})
	ma.OnFlip(func(node int, newSpin int8, induced bool) {
		b := int(ma.Time() / *bucket)
		if b > buckets {
			b = buckets
		}
		counts[b]++
	})
	ma.SetHorizon(*duration)
	ma.Run(*duration)

	totalSpins := *n * *chips
	perFlip := interconnect.FlipUpdateBytes(totalSpins, *chips-1)

	rate := &metrics.Series{Name: "flips per ns (one chip)"}
	demand := &metrics.Series{Name: fmt.Sprintf("projected broadcast demand, %d chips (B/ns)", *chips)}
	peak := 0.0
	for b := 0; b < buckets; b++ {
		t := (float64(b) + 0.5) * *bucket
		fr := float64(counts[b]) / *bucket
		rate.Add(t, fr)
		// Every chip flips at a similar rate; each flip must reach the
		// other chips.
		d := fr * float64(*chips) * perFlip
		demand.Add(t, d)
		if d > peak {
			peak = d
		}
	}

	fmt.Print(metrics.Table("Communication demand over the schedule (Sec 5.3)", rate, demand))
	note("one %d-spin chip flipped %d times in %.0f ns; projected peak broadcast demand", *n, ma.Flips(), *duration)
	note("for a %d-chip system of %d spins: %.1f B/ns (%.2f GB/s-equivalent).",
		*chips, totalSpins, peak, peak)
	note("expected shape (paper): demand is highest at the start of the schedule and")
	note("decays as the system freezes — the paper projects ~50 Tb/s peak for sixteen")
	note("8000-spin chips flipping every ~10 ns, i.e. bandwidth is the binding resource.")
	return nil
}
