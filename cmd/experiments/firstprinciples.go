package main

import (
	"flag"
	"fmt"

	"mbrim/internal/brim"
	"mbrim/internal/metrics"
	"mbrim/internal/sa"
)

func init() {
	register("firstprinciples", "Sec 6.4.1: states explored, instructions per flip, flip cadence", runFirstPrinciples)
}

// runFirstPrinciples reproduces the Sec 6.4.1 analysis on a K-graph:
// how many states each solver explores to reach comparable quality,
// SA's modeled instruction cost per flip (the paper counts ~140,000
// for K800), and BRIM's average time between spin flips (the paper's
// ~20 ps for K800; here in the simulator's ns time base).
func runFirstPrinciples(args []string) error {
	fs := flag.NewFlagSet("firstprinciples", flag.ContinueOnError)
	n := fs.Int("n", 256, "K-graph size (paper: 800)")
	sweeps := fs.Int("sweeps", 400, "SA sweeps")
	duration := fs.Float64("duration", 300, "BRIM duration, ns")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, m := kgraph(*n, *seed)

	ops := metrics.NewOpCounter()
	saRes := sa.Solve(m, sa.Config{Sweeps: *sweeps, Seed: *seed, Ops: ops})
	brimRes := brim.Solve(m, brim.SolveConfig{Duration: *duration, Config: brim.Config{Seed: *seed}})

	fmt.Printf("# Sec 6.4.1 first principles, K%d\n", *n)
	fmt.Printf("SA:   states explored (accepted flips): %d of %d attempts\n", saRes.Flips, saRes.Attempts)
	fmt.Printf("SA:   modeled instructions: %d (%.0f per flip)\n", saRes.Instructions, saRes.InstructionsPerFlip())
	fmt.Printf("SA:   wall time: %v (%.0f ns per flip)\n", saRes.Wall,
		float64(saRes.Wall.Nanoseconds())/float64(maxi64(saRes.Flips, 1)))
	fmt.Printf("SA:   final cut: %.0f\n", g.CutValue(saRes.Spins))
	fmt.Printf("BRIM: states explored (spin flips): %d (%d induced)\n", brimRes.Flips, brimRes.Induced)
	fmt.Printf("BRIM: model time: %.0f ns (%.3f ns between flips)\n", brimRes.ModelNS,
		brimRes.ModelNS/float64(maxi64(brimRes.Flips, 1)))
	fmt.Printf("BRIM: final cut: %.0f\n", g.CutValue(brimRes.Spins))

	if brimRes.Flips > 0 && saRes.Flips > 0 {
		saNSPerFlip := float64(saRes.Wall.Nanoseconds()) / float64(saRes.Flips)
		brimNSPerFlip := brimRes.ModelNS / float64(brimRes.Flips)
		note("per-state-explored speed advantage of the physical machine: %.0fx.",
			saNSPerFlip/brimNSPerFlip)
		note("matching BRIM's flip cadence in software would need ~%.1f G instr/s × %.0f = %.2f P instr/s.",
			1/brimNSPerFlip, saRes.InstructionsPerFlip(),
			saRes.InstructionsPerFlip()/brimNSPerFlip/1e6)
	}
	note("expected shape (paper, K800): SA explored ~148K states vs BRIM's ~115K for")
	note("comparable quality — similar exploration volumes — but SA pays ~140,000")
	note("instructions per flip while BRIM flips every ~20 ps, which is why matching it")
	note("computationally needs ~2 Peta-ops/s (Sec 6.4.1).")
	return nil
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
