package main

import (
	"flag"
	"fmt"

	"mbrim/internal/core"
	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
	"mbrim/internal/sbm"
)

func init() {
	register("fig12", "multiprocessor quality vs time: mBRIM 3D/HB/LB, concurrent and batch, vs SBM and SA", runFig12)
}

// runFig12 reproduces Fig 12: a large K-graph on a 4-chip mBRIM under
// three bandwidth tiers and two operating modes, against dSBM and SA.
//
// Bandwidth scaling: the paper's HB tier (3×250 GB/s per chip) is
// provisioned for 4 chips of 8192 spins. Communication demand scales
// with system size, so for a scaled-down benchmark the channel rate is
// scaled by n/16384 to preserve the paper's demand-to-supply ratio —
// otherwise a small system never congests and every tier degenerates
// into mBRIM_3D.
func runFig12(args []string) error {
	fs := flag.NewFlagSet("fig12", flag.ContinueOnError)
	n := fs.Int("n", 1024, "K-graph size (paper: 16384)")
	chips := fs.Int("chips", 4, "number of chips")
	duration := fs.Float64("duration", 300, "annealing time per job, ns")
	epoch := fs.Float64("epoch", 3.3, "epoch size, ns (concurrent)")
	batchEpoch := fs.Float64("batchepoch", 16, "epoch size, ns (batch)")
	runs := fs.Int("runs", 4, "jobs in batch mode / SBM+SA restarts")
	seed := fs.Uint64("seed", 1, "random seed")
	tracePath := traceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tracer, closeTrace, err := openTrace(*tracePath)
	if err != nil {
		return err
	}
	defer closeTrace()
	g, m := kgraph(*n, *seed)
	bwScale := float64(*n) / 16384

	type tier struct {
		name string
		rate float64 // channel bytes/ns
	}
	tiers := []tier{
		{"mBRIM_3D", 0},
		{"mBRIM_HB", core.HBChannelBytesPerNS * bwScale},
		{"mBRIM_LB", core.LBChannelBytesPerNS * bwScale},
	}

	var series []*metrics.Series
	addTrace := func(name string, pts []metrics.Point) *metrics.Series {
		s := &metrics.Series{Name: name}
		for _, p := range pts {
			s.Add(p.X, g.CutFromEnergy(p.Y))
		}
		series = append(series, s)
		return s
	}

	for _, tr := range tiers {
		cfg := multichip.Config{
			Chips: *chips, EpochNS: *epoch, Seed: *seed, Parallel: true,
			ChannelBytesPerNS: tr.rate, SampleEveryNS: *duration / 30,
			Tracer: tracer,
		}
		conc := multichip.MustSystem(m, cfg).RunConcurrent(*duration)
		s := addTrace(tr.name+" concurrent (elapsed ns)", conc.Trace)
		note("%s concurrent: final cut %.0f, elapsed %.0f ns (stall %.0f ns, traffic %.0f B)",
			tr.name, g.CutFromEnergy(conc.Energy), conc.ElapsedNS, conc.StallNS, conc.TrafficBytes)
		_ = s

		// Batch mode anneals one slice of each job per epoch, so a job
		// needs chips× the elapsed time for the same per-spin annealing
		// — but it delivers `runs` results at once. Fairness: run for
		// chips×duration and plot the *amortized per-job* elapsed time,
		// which is the throughput comparison the paper makes (Sec 6.3).
		bcfg := cfg
		bcfg.EpochNS = *batchEpoch
		batch := multichip.MustSystem(m, bcfg).RunBatch(*runs, *duration*float64(*chips))
		bs := &metrics.Series{Name: tr.name + " batch (per-job elapsed ns)"}
		for _, p := range batch.Trace {
			bs.Add(p.X/float64(*runs), g.CutFromEnergy(p.Y))
		}
		series = append(series, bs)
		note("%s batch: best cut %.0f, elapsed %.0f ns = %.0f ns/job (stall %.0f ns, traffic %.0f B)",
			tr.name, g.CutFromEnergy(batch.BestEnergy), batch.ElapsedNS,
			batch.ElapsedNS/float64(*runs), batch.StallNS, batch.TrafficBytes)
	}

	// Software baselines on measured wall time.
	dsb := sbmLadder(g, m, sbm.Discrete, []int{50, 150, 500, 1500}, *runs, *seed)
	series = append(series, ladderSeries("dSBM best (measured ns)", dsb,
		func(p softwareLadderPoint) float64 { return p.BestCut }))
	// The paper's actual comparator is a *multi-chip* SBM [49]:
	// partitioned bSB with per-step position exchange.
	msb := &metrics.Series{Name: "mSBM 4-chip best (measured ns)"}
	for _, steps := range []int{50, 150, 500, 1500} {
		best := 0.0
		var wall float64
		for r := 0; r < *runs; r++ {
			res := sbm.SolveMultiChip(m, sbm.MultiChipConfig{
				Config: sbm.Config{Variant: sbm.Ballistic, Steps: steps, Seed: *seed + uint64(r)},
				Chips:  *chips,
			})
			wall += float64(res.Wall.Nanoseconds())
			if cut := g.CutValue(res.Spins); cut > best {
				best = cut
			}
		}
		msb.Add(wall, best)
	}
	series = append(series, msb)
	saPts := saLadder(g, m, []int{10, 30, 100, 300}, *runs, *seed)
	series = append(series, ladderSeries("SA best (measured ns)", saPts,
		func(p softwareLadderPoint) float64 { return p.BestCut }))

	fmt.Print(metrics.Table(fmt.Sprintf("Fig 12: K%d cut vs time, %d-chip mBRIM vs dSBM vs SA", *n, *chips), series...))
	note("bandwidth tiers scaled by n/16384 = %.4f to preserve the paper's congestion ratio.", bwScale)
	note("expected shape (paper): mBRIM_3D concurrent is best and fastest (2200x vs SBM);")
	note("HB/LB stall and finish later; batch mode recovers most of the stall (2.8x/7x)")
	note("at slightly lower quality, still above SBM's best.")
	return nil
}
