package main

import (
	"flag"
	"fmt"
	"time"

	"mbrim/internal/core"
	"mbrim/internal/embed"
	"mbrim/internal/ising"
	"mbrim/internal/portfolio"
)

func init() {
	register("portfolio", "heterogeneous race (HETRI) vs solo engines on dense and embedded structures", runPortfolio)
}

// runPortfolio demonstrates the portfolio engine's two claims on two
// structurally opposite problems — a dense K-graph and a sparse,
// irregular chimera-embedded complete graph:
//
//  1. racing heterogeneous engines to a fixed target is never slower
//     than the *a-priori-unknown* best solo engine by more than the
//     racing overhead, and beats committing to the wrong one, and
//  2. the structure dispatcher fields a sensible lineup from row
//     statistics alone (density, degree CV) when no entrants are named.
func runPortfolio(args []string) error {
	fs := flag.NewFlagSet("portfolio", flag.ContinueOnError)
	n := fs.Int("n", 96, "K-graph size (the dense problem)")
	en := fs.Int("en", 20, "logical size of the chimera-embedded problem")
	sweeps := fs.Int("sweeps", 400, "SA/tabu sweep budget")
	steps := fs.Int("steps", 4000, "SBM step budget")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	_, dense := kgraph(*n, *seed)
	logical, _ := kgraph(*en, *seed+1)
	emb := embed.CompleteOnChimera(logical.ToIsing(), 4, 0)

	fmt.Println("# heterogeneous portfolio (HETRI mode): race vs solo commitment")
	for _, prob := range []struct {
		name string
		m    *ising.Model
	}{
		{fmt.Sprintf("dense K%d", *n), dense},
		{fmt.Sprintf("chimera-embedded K%d (%d physical)", *en, emb.Physical.N()), emb.Physical},
	} {
		stats := portfolio.Analyze(prob.m)
		field := portfolio.Dispatch(stats, 0)
		fmt.Printf("\n## problem: %s — n=%d nnz=%d density=%.3f degreeCV=%.2f\n",
			prob.name, stats.N, stats.NNZ, stats.Density, stats.DegreeCV)
		names := ""
		for i, e := range field {
			if i > 0 {
				names += ","
			}
			names += e.Kind
		}
		fmt.Printf("## dispatcher field: %s\n", names)

		// Solo baselines: what committing to one engine costs.
		base := core.Request{Model: prob.m, Seed: *seed,
			Sweeps: *sweeps, Steps: *steps, Runs: 1}
		best := 0.0
		fmt.Printf("%-10s %14s %12s %s\n", "engine", "energy", "wall", "note")
		for _, ent := range field {
			req := base
			req.Kind = core.Kind(ent.Kind)
			out, err := core.Solve(req)
			if err != nil {
				return fmt.Errorf("solo %s: %w", ent.Kind, err)
			}
			if out.Energy < best {
				best = out.Energy
			}
			fmt.Printf("%-10s %14.1f %12s solo\n", ent.Kind, out.Energy, out.Wall.Round(time.Microsecond))
		}

		// The race: same field, first to the best solo energy wins.
		req := base
		req.Kind = core.Portfolio
		target := best
		req.Portfolio = core.PortfolioSpec{TargetEnergy: &target}
		out, err := core.Solve(req)
		if err != nil {
			return fmt.Errorf("portfolio: %w", err)
		}
		p := out.Portfolio
		how := "best at end"
		if p.HitTarget {
			how = "first to target"
		}
		fmt.Printf("%-10s %14.1f %12s race: %s won (%s), %d/%d cancelled\n",
			"portfolio", out.Energy, out.Wall.Round(time.Microsecond),
			p.WinnerKind, how, int(out.Stats["entrantsInterrupted"]), len(p.Entrants))
		for _, e := range p.Entrants {
			state := "finished"
			if e.Interrupted {
				state = "cancelled"
			}
			if e.Err != "" {
				state = "failed"
			}
			fmt.Printf("           e%d %-8s energy %.1f  wall %s  %s\n",
				e.Index, e.Kind, e.Energy, time.Duration(e.WallNS).Round(time.Microsecond), state)
		}
	}
	note("the race's wall time tracks the winning entrant, not the sum of the field —")
	note("losers are cancelled at their next barrier once the target is crossed. On a")
	note("single vCPU the entrants time-slice one core, so solo walls undercount the")
	note("racing overhead; see BENCH_portfolio.json for the interleaved A/B.")
	return nil
}
