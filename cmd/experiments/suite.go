package main

import (
	"flag"
	"fmt"
	"time"

	"mbrim/internal/brim"
	"mbrim/internal/graph"
	"mbrim/internal/ising"
	"mbrim/internal/rng"
	"mbrim/internal/sa"
	"mbrim/internal/sbm"
)

func init() {
	register("suite", "benchmark suite: every solver class over a standard instance set", runSuite)
}

// suiteInstance is one named workload.
type suiteInstance struct {
	name string
	g    *graph.Graph
}

// standardSuite mirrors the instance families of the MaxCut
// literature: dense K-graphs across sizes plus sparse Gset-style
// random and near-regular graphs.
func standardSuite(seed uint64) []suiteInstance {
	return []suiteInstance{
		{"K64", graph.Complete(64, rng.New(seed))},
		{"K128", graph.Complete(128, rng.New(seed+1))},
		{"K256", graph.Complete(256, rng.New(seed+2))},
		{"G500_0.02", graph.Random(500, 0.02, rng.New(seed+3))},
		{"G1000_0.01", graph.Random(1000, 0.01, rng.New(seed+4))},
		{"R400_d6", graph.RandomRegularish(400, 6, rng.New(seed+5))},
	}
}

// runSuite runs SA, dSBM and BRIM over the standard suite and prints a
// results matrix — the regression table an open-source release tracks
// across versions.
func runSuite(args []string) error {
	fs := flag.NewFlagSet("suite", flag.ContinueOnError)
	runs := fs.Int("runs", 5, "restarts per solver per instance")
	sweeps := fs.Int("sweeps", 300, "SA sweeps")
	steps := fs.Int("steps", 800, "dSBM steps")
	duration := fs.Float64("duration", 150, "BRIM anneal, ns")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("%-12s %6s %8s | %10s %12s | %10s %12s | %10s %12s\n",
		"instance", "n", "m", "SA cut", "SA time", "dSBM cut", "dSBM time", "BRIM cut", "model ns")
	for _, inst := range standardSuite(*seed) {
		dense := inst.g.ToIsing()

		// SA prefers the representation that matches the density.
		var saProblem ising.Problem = dense
		if float64(inst.g.M()) < 0.1*float64(inst.g.N()*(inst.g.N()-1)/2) {
			saProblem = inst.g.ToSparseIsing()
		}
		saBest, saWall := 0.0, time.Duration(0)
		for r := 0; r < *runs; r++ {
			res := sa.SolveProblem(saProblem, sa.Config{Sweeps: *sweeps, Seed: *seed + uint64(r)})
			saWall += res.Wall
			if cut := inst.g.CutValue(res.Spins); cut > saBest {
				saBest = cut
			}
		}

		dsbBest, dsbWall := 0.0, time.Duration(0)
		for r := 0; r < *runs; r++ {
			res := sbm.Solve(dense, sbm.Config{Variant: sbm.Discrete, Steps: *steps, Seed: *seed + uint64(r)})
			dsbWall += res.Wall
			if cut := inst.g.CutValue(res.Spins); cut > dsbBest {
				dsbBest = cut
			}
		}

		brimBest := 0.0
		for r := 0; r < *runs; r++ {
			res := brim.Solve(dense, brim.SolveConfig{Duration: *duration,
				Config: brim.Config{Seed: *seed + uint64(r)}})
			if cut := inst.g.CutFromEnergy(res.Energy); cut > brimBest {
				brimBest = cut
			}
		}

		fmt.Printf("%-12s %6d %8d | %10.0f %12v | %10.0f %12v | %10.0f %12.0f\n",
			inst.name, inst.g.N(), inst.g.M(),
			saBest, saWall, dsbBest, dsbWall, brimBest, *duration*float64(*runs))
	}
	note("times are whole-batch: SA/dSBM measured host time, BRIM accumulated model ns.")
	note("the regression target: BRIM within a few %% of the software solvers' best cut")
	note("on every family, at 4-6 orders of magnitude less (machine) time.")
	return nil
}
