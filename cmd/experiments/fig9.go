package main

import (
	"flag"
	"fmt"

	"mbrim/internal/ising"
	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
)

func init() {
	register("fig9", "energy surprise vs degree of ignorance for different epoch sizes", runFig9)
}

// runFig9 reproduces Fig 9: a problem partitioned over parallel SA
// solvers that synchronize every epoch; each epoch-boundary sample
// plots the solver's ignorance of the external state against its
// energy surprise.
func runFig9(args []string) error {
	fs := flag.NewFlagSet("fig9", flag.ContinueOnError)
	n := fs.Int("n", 2048, "graph size (paper: 8000)")
	solvers := fs.Int("solvers", 8, "number of parallel solvers")
	runs := fs.Int("runs", 5, "independent runs (paper: 20)")
	epochs := fs.Int("epochs", 10, "epochs per run")
	hw := fs.Bool("hw", false, "probe the BRIM multiprocessor's own shadows instead of the SA-solver model")
	duration := fs.Float64("duration", 100, "hardware run length per epoch-size point, ns (-hw)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, m := kgraph(*n, *seed)

	if *hw {
		return runFig9Hardware(m, *solvers, *duration, *seed)
	}

	// Epoch sizes in Metropolis moves, expressed relative to partition
	// size: a small epoch attempts ~5% of a partition's spins, a large
	// one many sweeps' worth.
	part := *n / *solvers
	epochSizes := map[string]int{
		"small":  part/20 + 1,
		"medium": part,
		"large":  part * 20,
	}
	var series []*metrics.Series
	for _, label := range []string{"small", "medium", "large"} {
		moves := epochSizes[label]
		samples := multichip.EnergySurprise(m, multichip.SurpriseConfig{
			Solvers:    *solvers,
			EpochMoves: moves,
			Epochs:     *epochs,
			Runs:       *runs,
			Seed:       *seed,
		})
		s := &metrics.Series{Name: fmt.Sprintf("%s epoch (%d moves)", label, moves)}
		var ign, sur []float64
		for _, sample := range samples {
			s.Add(sample.Ignorance, sample.Surprise)
			ign = append(ign, sample.Ignorance)
			sur = append(sur, sample.Surprise)
		}
		series = append(series, s)
		is, ss := metrics.Summarize(ign), metrics.Summarize(sur)
		note("%s epochs: mean ignorance %.3f, mean surprise %.1f (min %.1f, max %.1f)",
			label, is.Mean, ss.Mean, ss.Min, ss.Max)
	}

	fmt.Print(metrics.Table("Fig 9: (ignorance, energy surprise) scatter per epoch size", series...))
	note("expected shape (paper): long epochs push samples far right (high ignorance)")
	note("with uniformly negative, large-magnitude surprise; short epochs cluster near")
	note("the origin where surprise is small and no longer uniformly negative.")
	return nil
}

// runFig9Hardware repeats the experiment on the multiprocessor model
// itself: the per-epoch ignorance/surprise probes read the chips'
// actual shadow registers against the true global state.
func runFig9Hardware(m *ising.Model, chips int, duration float64, seed uint64) error {
	var series []*metrics.Series
	for _, epoch := range []float64{1, 3.3, 10, 25} {
		res := multichip.MustSystem(m, multichip.Config{
			Chips: chips, Seed: seed, EpochNS: epoch, Probes: true,
		}).RunConcurrent(duration)
		s := &metrics.Series{Name: fmt.Sprintf("epoch %.1f ns", epoch)}
		var ign, sur []float64
		for _, sample := range res.Surprises {
			s.Add(sample.Ignorance, sample.Surprise)
			ign = append(ign, sample.Ignorance)
			sur = append(sur, sample.Surprise)
		}
		series = append(series, s)
		is, ss := metrics.Summarize(ign), metrics.Summarize(sur)
		note("epoch %.1f ns: mean ignorance %.4f, mean surprise %.1f", epoch, is.Mean, ss.Mean)
	}
	fmt.Print(metrics.Table("Fig 9 (hardware probes): (ignorance, surprise) per epoch size", series...))
	note("same phase structure as the SA-solver version, measured on the BRIM")
	note("multiprocessor's shadow registers directly.")
	return nil
}
