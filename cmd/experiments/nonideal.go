package main

import (
	"flag"
	"fmt"

	"mbrim/internal/brim"
	"mbrim/internal/metrics"
)

func init() {
	register("nonideal", "analog non-idealities: quality vs device variation and thermal noise", runNonideal)
}

// runNonideal sweeps the two analog non-idealities of the BRIM model —
// per-node process variation and thermal noise — and reports average
// solution quality. The paper's machine-metrics discussion (Sec 2.2)
// treats buildability as a first-class concern; this quantifies how
// much device sloppiness the architecture tolerates.
func runNonideal(args []string) error {
	fs := flag.NewFlagSet("nonideal", flag.ContinueOnError)
	n := fs.Int("n", 256, "K-graph size")
	duration := fs.Float64("duration", 150, "anneal duration, ns")
	runs := fs.Int("runs", 6, "restarts per point")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, m := kgraph(*n, *seed)

	average := func(cfg brim.Config) float64 {
		sum := 0.0
		for i := 0; i < *runs; i++ {
			c := cfg
			c.Seed = *seed + uint64(100+i)
			res := brim.Solve(m, brim.SolveConfig{Duration: *duration, Config: c})
			sum += g.CutFromEnergy(res.Energy)
		}
		return sum / float64(*runs)
	}

	ideal := average(brim.Config{})

	variation := &metrics.Series{Name: "avg cut vs device variation σ"}
	for _, sigma := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4} {
		variation.Add(sigma, average(brim.Config{DeviceVariation: sigma}))
	}
	noise := &metrics.Series{Name: "avg cut vs thermal noise amplitude"}
	for _, amp := range []float64{0, 0.01, 0.03, 0.1, 0.3, 1} {
		noise.Add(amp, average(brim.Config{NoiseAmp: amp}))
	}

	fmt.Print(metrics.Table(fmt.Sprintf("Non-idealities on K%d (ideal avg cut %.0f)", *n, ideal),
		variation, noise))
	note("expected shape: a wide flat plateau (a few %% variation and mild noise cost")
	note("little) followed by degradation once the perturbations rival the signal —")
	note("the analog headroom that makes CMOS-compatible Ising machines practical.")
	return nil
}
