package main

import (
	"flag"
	"fmt"

	"mbrim/internal/metrics"
	"mbrim/internal/multichip"
)

func init() {
	register("fig13", "spin flips vs bit changes: evolution over time and ratio vs epoch size", runFig13)
}

// runFig13 reproduces Fig 13. Left panel: flips and bit changes per
// epoch over an annealing run at a fixed epoch size, plus their ratio.
// Right panel: the average flips/bit-changes ratio as a function of
// epoch size — the 4-5x batch-mode traffic saving at ~3 ns epochs.
func runFig13(args []string) error {
	fs := flag.NewFlagSet("fig13", flag.ContinueOnError)
	n := fs.Int("n", 512, "K-graph size")
	chips := fs.Int("chips", 4, "number of chips")
	duration := fs.Float64("duration", 200, "annealing time, ns")
	epoch := fs.Float64("epoch", 3.3, "fixed epoch for the time series, ns")
	seed := fs.Uint64("seed", 1, "random seed")
	tracePath := traceFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tracer, closeTrace, err := openTrace(*tracePath)
	if err != nil {
		return err
	}
	defer closeTrace()
	_, m := kgraph(*n, *seed)

	// Left panel: per-epoch series at the fixed epoch size.
	res := multichip.MustSystem(m, multichip.Config{
		Chips: *chips, EpochNS: *epoch, Seed: *seed, Parallel: true, RecordEpochStats: true,
		Tracer: tracer,
	}).RunConcurrent(*duration)

	flips := &metrics.Series{Name: fmt.Sprintf("flips per epoch (epoch %.1f ns)", *epoch)}
	changes := &metrics.Series{Name: "bit changes per epoch"}
	ratio := &metrics.Series{Name: "flips / bit changes"}
	for _, st := range res.EpochStats {
		t := float64(st.Epoch) * *epoch
		flips.Add(t, float64(st.Flips))
		changes.Add(t, float64(st.BitChanges))
		if st.BitChanges > 0 {
			ratio.Add(t, float64(st.Flips)/float64(st.BitChanges))
		}
	}

	// Right panel: average ratio vs epoch size.
	ratioVsEpoch := &metrics.Series{Name: "avg flips/bit-changes vs epoch size"}
	for _, e := range []float64{0.5, 1, 2, 3.3, 5, 8, 12, 20} {
		r := multichip.MustSystem(m, multichip.Config{
			Chips: *chips, EpochNS: e, Seed: *seed, Parallel: true,
		}).RunConcurrent(*duration)
		if r.BitChanges > 0 {
			ratioVsEpoch.Add(e, float64(r.Flips)/float64(r.BitChanges))
		}
	}

	fmt.Print(metrics.Table("Fig 13: flips vs bit changes", flips, changes, ratio, ratioVsEpoch))
	note("run totals at %.1f ns epochs: %d flips, %d bit changes (ratio %.2f).",
		*epoch, res.Flips, res.BitChanges, float64(res.Flips)/float64(max64(res.BitChanges, 1)))
	note("expected shape (paper): the ratio is stable over a run after an initial period,")
	note("and grows roughly linearly with epoch size — ~4-5x traffic saving at ~3 ns epochs")
	note("compared to sub-nanosecond epochs.")
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
