package main

// The -cluster mode: instead of solving in process, the CLI acts as a
// distributed-fabric coordinator, sharding the model across mbrimd
// -worker nodes (internal/cluster). The optional chaos flags stand up
// in-process fault-injecting proxies in front of the workers so the
// robustness layer can be exercised from the command line — the same
// harness the cluster-smoke CI job drives.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"mbrim"
	"mbrim/internal/cluster"
	"mbrim/internal/cluster/chaosproxy"
	"mbrim/internal/obs"
)

// clusterOpts carries the CLI flags the cluster mode consumes.
type clusterOpts struct {
	workers     string // comma-separated worker base URLs
	chips       int
	duration    float64
	epoch       float64
	coordinated bool
	bandwidth   float64
	backend     string
	seed        uint64
	sample      float64
	ckptEvery   int
	federate    bool
	tracePath   string // write the merged fleet trace here (implies federate)

	chaosSeed      uint64
	chaosDrop      float64
	chaosError     float64
	chaosDelayRate float64
	chaosDelay     time.Duration
	killWorker     int
	killEpoch      int

	jsonOut    bool
	printSpins bool
	metricsOut bool
	ckptPath   string

	tracer   mbrim.Tracer
	registry *mbrim.Registry
}

// runCluster executes the distributed solve and prints the outcome in
// the CLI's usual shape. It exits the process (0 success, 1 error,
// 3 interrupted-with-checkpoint) like the in-process path.
func runCluster(ctx context.Context, info io.Writer, model *mbrim.Model, g *mbrim.Graph, quboOffset float64, o clusterOpts) {
	workers := splitWorkers(o.workers)
	if len(workers) == 0 {
		fatal(fmt.Errorf("-cluster needs at least one worker URL"))
	}

	// Chaos harness: when any injection knob is set, each worker is
	// fronted by a loopback proxy with a per-worker fate schedule.
	var proxies []*chaosproxy.Proxy
	chaosOn := o.chaosDrop > 0 || o.chaosError > 0 || o.chaosDelayRate > 0 || o.killWorker >= 0
	if chaosOn {
		if o.killWorker >= len(workers) {
			fatal(fmt.Errorf("-chaos-kill-worker %d, but only %d workers", o.killWorker, len(workers)))
		}
		fronted, ps, stopProxies, err := startChaosProxies(workers, chaosproxy.Config{
			Seed:      o.chaosSeed,
			DropRate:  o.chaosDrop,
			ErrorRate: o.chaosError,
			DelayRate: o.chaosDelayRate,
			Delay:     o.chaosDelay,
		})
		if err != nil {
			fatal(err)
		}
		defer stopProxies()
		workers, proxies = fronted, ps
		fmt.Fprintf(info, "chaos:   %d proxies (seed %d, drop %.2f, error %.2f, delay %.2f×%v)\n",
			len(ps), o.chaosSeed, o.chaosDrop, o.chaosError, o.chaosDelayRate, o.chaosDelay)
	}

	cfg := cluster.Config{
		Workers:           workers,
		Chips:             o.chips,
		DurationNS:        o.duration,
		EpochNS:           o.epoch,
		Coordinated:       o.coordinated,
		Seed:              o.seed,
		Backend:           o.backend,
		ChannelBytesPerNS: o.bandwidth,
		SampleEveryNS:     o.sample,
		CheckpointEvery:   o.ckptEvery,
		Metrics:           o.registry,
		Tracer:            o.tracer,
		Federate:          o.federate || o.tracePath != "",
	}
	if o.killWorker >= 0 && o.killEpoch > 0 {
		killed := false // the replay crosses the kill epoch again; fire once
		cfg.OnEpoch = func(epoch int) {
			if epoch == o.killEpoch && !killed {
				killed = true
				proxies[o.killWorker].Blackhole(true)
				fmt.Fprintf(os.Stderr, "mbrim: chaos: blackholed worker %d at epoch %d\n", o.killWorker, epoch)
			}
		}
	}

	runID := fmt.Sprintf("cli-%d-%d", os.Getpid(), time.Now().UnixNano())
	co, err := cluster.New(model, runID, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "cluster: %d workers, %d slices\n", len(workers), valueOrChips(o.chips, len(workers)))

	start := time.Now()
	res, env, err := co.Solve(ctx)
	wall := time.Since(start)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// Interrupted: the coordinator captured a barrier-consistent
		// checkpoint the in-process engine can resume (-solver mbrim
		// -resume FILE). Mirror the in-process interrupt contract.
		fmt.Fprintf(os.Stderr, "mbrim: interrupted: %v\n", err)
		if res != nil {
			fmt.Fprintf(os.Stderr, "mbrim: best-so-far energy %.0f, %.1f ns model time (wall %v)\n",
				res.Energy, res.ModelNS, wall)
		}
		if o.ckptPath != "" {
			if env == nil {
				fmt.Fprintln(os.Stderr, "mbrim: no consistent cluster checkpoint available; nothing written")
			} else if werr := os.WriteFile(o.ckptPath, env, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "mbrim:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "mbrim: checkpoint written to %s (resume with -solver mbrim -resume %s)\n",
					o.ckptPath, o.ckptPath)
			}
		}
		writeFleetTrace(co, o.tracePath) // the partial trace still merges
		os.Exit(3)
	}
	if err != nil {
		fatal(err)
	}

	if co.TraceID() != 0 {
		fmt.Fprintf(info, "fleet:   trace %016x, %d federated events", co.TraceID(), len(co.FederatedEvents()))
		if snap, ok := co.FleetDiag(); ok {
			fmt.Fprintf(info, ", sync %.0f%%, straggler worker %d", 100*snap.SyncFraction, snap.Straggler)
		}
		fmt.Fprintln(info)
	}
	writeFleetTrace(co, o.tracePath)
	printClusterOutcome(res, g, quboOffset, wall, o)
}

// writeFleetTrace renders the run's merged fleet trace to path
// (Perfetto/chrome://tracing loadable). No-op when path is empty.
func writeFleetTrace(co *cluster.Coordinator, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbrim:", err)
		return
	}
	defer f.Close()
	if err := obs.WriteChromeTrace(f, co.FederatedEvents()); err != nil {
		fmt.Fprintln(os.Stderr, "mbrim:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "mbrim: fleet trace written to %s\n", path)
}

func valueOrChips(chips, workers int) int {
	if chips == 0 {
		return workers
	}
	return chips
}

func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

// startChaosProxies fronts every worker with a fault-injecting loopback
// proxy. Each proxy's fate schedule is seeded per worker index so the
// injected faults are deterministic but uncorrelated across workers.
func startChaosProxies(workers []string, cfg chaosproxy.Config) (urls []string, proxies []*chaosproxy.Proxy, stop func(), err error) {
	var servers []*http.Server
	stop = func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i, w := range workers {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		p, perr := chaosproxy.New(w, c)
		if perr != nil {
			stop()
			return nil, nil, nil, perr
		}
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			stop()
			return nil, nil, nil, lerr
		}
		srv := &http.Server{Handler: p, ReadHeaderTimeout: 5 * time.Second}
		servers = append(servers, srv)
		go srv.Serve(ln)
		urls = append(urls, "http://"+ln.Addr().String())
		proxies = append(proxies, p)
	}
	return urls, proxies, stop, nil
}

// printClusterOutcome renders a completed distributed solve in the same
// shape as the in-process path, plus the recovery ledger.
func printClusterOutcome(res *cluster.Result, g *mbrim.Graph, quboOffset float64, wall time.Duration, o clusterOpts) {
	cut := 0.0
	if g != nil {
		cut = g.CutValue(res.Spins)
	}
	if o.jsonOut {
		var snap any
		if o.metricsOut && o.registry != nil {
			snap = o.registry.Snapshot()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Solver               string                `json:"solver"`
			Energy               float64               `json:"energy"`
			Cut                  float64               `json:"cut,omitempty"`
			QUBOValue            float64               `json:"quboValue,omitempty"`
			ModelNS              float64               `json:"modelNS"`
			StallNS              float64               `json:"stallNS"`
			ElapsedNS            float64               `json:"elapsedNS"`
			Flips                int64                 `json:"flips"`
			BitChanges           int64                 `json:"bitChanges"`
			TrafficBytes         float64               `json:"trafficBytes"`
			PeakDemandBytesPerNS float64               `json:"peakDemandBytesPerNS"`
			Epochs               int                   `json:"epochs"`
			WallNS               int64                 `json:"wallNS"`
			LiveWorkers          int                   `json:"liveWorkers"`
			Recovery             cluster.RecoveryStats `json:"recovery"`
			Spins                []int8                `json:"spins,omitempty"`
			Metrics              any                   `json:"metrics,omitempty"`
		}{
			Solver: "cluster", Energy: res.Energy, Cut: cut,
			QUBOValue: res.Energy + quboOffset,
			ModelNS:   res.ModelNS, StallNS: res.StallNS, ElapsedNS: res.ElapsedNS,
			Flips: res.Flips, BitChanges: res.BitChanges,
			TrafficBytes: res.TrafficBytes, PeakDemandBytesPerNS: res.PeakDemandBytesPerNS,
			Epochs: res.Epochs, WallNS: wall.Nanoseconds(), LiveWorkers: res.LiveWorkers,
			Recovery: res.Recovery, Spins: spinsIf(o.printSpins, res.Spins), Metrics: snap,
		}); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("solver:  cluster (%d live workers)\n", res.LiveWorkers)
	if g != nil {
		fmt.Printf("cut:     %.0f\n", cut)
	}
	fmt.Printf("energy:  %.0f\n", res.Energy)
	if quboOffset != 0 {
		fmt.Printf("qubo:    %.0f (energy + offset)\n", res.Energy+quboOffset)
	}
	fmt.Printf("machine: %.1f ns model time (%.1f ns with stalls)\n", res.ModelNS, res.ElapsedNS)
	fmt.Printf("wall:    %v\n", wall)
	for _, kv := range []struct {
		name string
		v    float64
	}{
		{"flips", float64(res.Flips)},
		{"bitChanges", float64(res.BitChanges)},
		{"trafficBytes", res.TrafficBytes},
		{"stallNS", res.StallNS},
		{"epochs", float64(res.Epochs)},
		{"rpcRetries", float64(res.Recovery.RPCRetries)},
		{"workerDeaths", float64(res.Recovery.WorkerDeaths)},
		{"recoveries", float64(res.Recovery.Recoveries)},
		{"replayedEpochs", float64(res.Recovery.ReplayedEpochs)},
		{"handoffBytes", res.Recovery.HandoffBytes},
		{"recoveryStallNS", res.Recovery.RecoveryStallNS},
	} {
		if kv.v != 0 {
			fmt.Printf("%-8s %.0f\n", kv.name+":", kv.v)
		}
	}
	if res.Recovery.Degraded {
		fmt.Println("degraded: yes (a survivor hosts multiple slices)")
	}
	if o.printSpins {
		for _, s := range res.Spins {
			if s > 0 {
				fmt.Print("+")
			} else {
				fmt.Print("-")
			}
		}
		fmt.Println()
	}
	if o.metricsOut && o.registry != nil {
		fmt.Println("metrics:")
		if err := o.registry.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func spinsIf(on bool, spins []int8) []int8 {
	if !on {
		return nil
	}
	return spins
}
