// Command mbrim solves a MaxCut/Ising problem from a Gset-format graph
// file (or a generated K-graph) with any engine in the library.
//
// Usage:
//
//	mbrim -solver mbrim -chips 4 -duration 500 graph.gset
//	mbrim -solver sa -sweeps 1000 -runs 10 -k 512
//	mbrim -solver mbrim -chips 3 -k 256 -span-trace run.trace.json -diag
//
// With -k N a seeded K-graph is generated instead of reading a file.
// The exit status is 0 on success; the solution, cut value, energy and
// the time ledger are printed to stdout.
//
// With -cluster URL,URL,... the solve is distributed: the CLI becomes
// the coordinator of the fabric in internal/cluster, sharding the
// model across mbrimd -worker nodes. The -chaos-* flags front the
// workers with fault-injecting proxies for robustness drills:
//
//	mbrimd -addr :8361 -worker &
//	mbrimd -addr :8362 -worker &
//	mbrim -cluster http://localhost:8361,http://localhost:8362 \
//	  -k 256 -chips 2 -duration 200 -chaos-kill-worker 1 -chaos-kill-epoch 9
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mbrim"
	runsvc "mbrim/internal/runs"
)

func main() {
	solver := flag.String("solver", "sa", "engine: "+fmt.Sprint(mbrim.Kinds()))
	k := flag.Int("k", 0, "generate a seeded K-graph of this size instead of reading a file")
	seed := flag.Uint64("seed", 1, "random seed")
	runs := flag.Int("runs", 1, "restarts / batch jobs")
	sweeps := flag.Int("sweeps", 200, "SA/tabu sweeps")
	steps := flag.Int("steps", 1000, "SBM steps")
	duration := flag.Float64("duration", 100, "machine anneal time, ns")
	chips := flag.Int("chips", 4, "multiprocessor chips")
	epoch := flag.Float64("epoch", 0, "multiprocessor epoch, ns (0 = default)")
	coordinated := flag.Bool("coordinated", false, "coordinate induced flips via synchronized PRNGs")
	bandwidth := flag.Float64("bandwidth", 0, "channel bandwidth, bytes/ns (0 = unlimited)")
	capacity := flag.Int("cap", 500, "machine capacity for d&c engines")
	backend := flag.String("backend", "auto", "coupling backend: auto, dense, csr or blocked (bit-identical; auto picks by density)")
	printSpins := flag.Bool("spins", false, "print the solution spin vector")
	jsonOut := flag.Bool("json", false, "emit the outcome as JSON instead of text")
	traceFile := flag.String("trace", "", "write the run's event stream to this file as JSON Lines")
	spanTraceFile := flag.String("span-trace", "", "record hierarchical solve spans and write a Chrome trace (load in ui.perfetto.dev) to this file")
	diagOut := flag.Bool("diag", false, "print convergence and partition-quality diagnostics after the run")
	metricsOut := flag.Bool("metrics", false, "print a metrics-registry snapshot after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	sample := flag.Float64("sample", 0, "record an energy sample every so many ns (machine engines)")
	epochStats := flag.Bool("epochstats", false, "record the multiprocessor's per-epoch activity ledger")
	probes := flag.Bool("probes", false, "record the multiprocessor's energy-surprise probe")
	parallel := flag.Bool("parallel", false, "run multiprocessor chips on host goroutines (bit-identical)")
	faultSeed := flag.Uint64("fault-seed", 0, "seed for the deterministic fault schedule")
	faultDrop := flag.Float64("fault-drop", 0, "per-message boundary-broadcast drop probability")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "per-message corruption probability (one update inverted)")
	faultDelay := flag.Float64("fault-delay", 0, "per-message one-epoch delay probability")
	faultStall := flag.Float64("fault-stall", 0, "per-chip per-epoch transient stall probability")
	faultChipLoss := flag.Int("fault-chip-loss", 0, "kill one chip permanently at this 1-based epoch (0 = never)")
	faultChip := flag.Int("fault-chip", -1, "which chip dies at -fault-chip-loss (-1 = pick from seed)")
	recoverDetect := flag.Bool("recover", false, "enable CRC-style detection with bounded retransmit")
	recoverRetries := flag.Int("recover-retries", 0, "max retransmits per faulted message (0 = default 3)")
	recoverBackoff := flag.Float64("recover-backoff", 0, "stall per retransmit attempt, ns (0 = default 0.5)")
	recoverWatchdog := flag.Float64("recover-watchdog", 0, "shadow-divergence fraction forcing a full-bitmap resync (0 = off)")
	recoverRepartition := flag.Bool("recover-repartition", false, "repartition a dead chip's slice onto survivors")
	clusterWorkers := flag.String("cluster", "", "distribute the solve across these mbrimd -worker URLs (comma-separated)")
	ckptEvery := flag.Int("ckpt-every", 0, "cluster coordinated-checkpoint cadence, epochs (0 = default 8)")
	federate := flag.Bool("federate", false, "cluster mode: federate worker telemetry (distributed trace + fleet diagnostics)")
	clusterTrace := flag.String("cluster-trace", "", "cluster mode: write the merged Perfetto-loadable fleet trace to FILE (implies -federate)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "cluster chaos proxies: fate-schedule seed")
	chaosDrop := flag.Float64("chaos-drop", 0, "cluster chaos proxies: per-request connection-drop probability")
	chaosError := flag.Float64("chaos-error", 0, "cluster chaos proxies: per-request 503 probability")
	chaosDelayRate := flag.Float64("chaos-delay-rate", 0, "cluster chaos proxies: per-request delay probability")
	chaosDelay := flag.Duration("chaos-delay", 2*time.Millisecond, "cluster chaos proxies: injected delay")
	chaosKillWorker := flag.Int("chaos-kill-worker", -1, "blackhole this worker index at -chaos-kill-epoch (-1 = never)")
	chaosKillEpoch := flag.Int("chaos-kill-epoch", 0, "epoch at which -chaos-kill-worker goes dark")
	timeout := flag.Duration("timeout", 0, "cancel the solve after this wall-clock budget (0 = none)")
	ckptPath := flag.String("checkpoint", "", "on interruption, write resume state to this file (multichip engines)")
	resumePath := flag.String("resume", "", "resume a multichip solve from this checkpoint file")
	listEngines := flag.Bool("engines", false, "list the registered engines with their capabilities and exit")
	portfolioField := flag.String("portfolio", "", `portfolio engine: comma-separated entrant kinds, e.g. "sa,tabu,dsbm" (empty = structure-based auto-dispatch)`)
	targetEnergy := flag.String("target", "", "portfolio engine: first entrant to reach this energy wins and the rest are cancelled")
	raceBudget := flag.Float64("race-budget", 0, "portfolio engine: race wall-clock budget, ms (0 = none)")
	handoff := flag.String("handoff", "", "portfolio engine: hand the race's best state to this engine as a warm start")
	flag.Parse()

	if *listEngines {
		for _, inf := range mbrim.Engines() {
			caps := inf.Capabilities
			var tags []string
			for _, t := range []struct {
				on   bool
				name string
			}{{caps.Resume, "resume"}, {caps.WarmStart, "warm-start"}, {caps.Backend, "backend"},
				{caps.Spans, "spans"}, {caps.Traced, "traced"}, {caps.ModelTime, "model-time"}} {
				if t.on {
					tags = append(tags, t.name)
				}
			}
			fmt.Printf("%-10s %-28s %s\n", inf.Kind, strings.Join(tags, ","), caps.Description)
		}
		return
	}

	kind, err := mbrim.ParseKind(*solver)
	if err != nil {
		fatal(err)
	}
	var pspec mbrim.PortfolioSpec
	if kind == mbrim.Portfolio {
		if *portfolioField != "" {
			for _, name := range strings.Split(*portfolioField, ",") {
				pspec.Entrants = append(pspec.Entrants,
					mbrim.PortfolioEntrant{Kind: strings.TrimSpace(name)})
			}
		}
		if *targetEnergy != "" {
			t, perr := strconv.ParseFloat(*targetEnergy, 64)
			if perr != nil {
				fatal(fmt.Errorf("-target: %v", perr))
			}
			pspec.TargetEnergy = &t
		}
		pspec.BudgetMS = *raceBudget
		if *handoff != "" {
			pspec.HandOff = &mbrim.PortfolioEntrant{Kind: *handoff}
		}
	} else if *portfolioField != "" || *targetEnergy != "" || *raceBudget != 0 || *handoff != "" {
		fatal(fmt.Errorf("-portfolio/-target/-race-budget/-handoff require -solver portfolio"))
	}
	// With -json, stdout carries only the JSON document; progress
	// lines go to stderr.
	info := os.Stdout
	if *jsonOut {
		info = os.Stderr
	}

	// The problem comes from a generated K-graph, a Gset graph file, or
	// a qbsolv-format .qubo file.
	var g *mbrim.Graph
	var model *mbrim.Model
	var quboOffset float64
	switch {
	case *k > 0:
		g = mbrim.CompleteGraph(*k, *seed)
		fmt.Fprintf(info, "problem: K%d (seed %d)\n", *k, *seed)
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".qubo"):
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		q, err := mbrim.ReadQUBOFile(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		model, quboOffset = q.ToIsing()
		fmt.Fprintf(info, "problem: %s (QUBO, %d variables)\n", flag.Arg(0), q.N())
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		g, err = mbrim.ReadGraph(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(info, "problem: %s (%d vertices, %d edges)\n", flag.Arg(0), g.N(), g.M())
	default:
		fatal(fmt.Errorf("need a graph file argument or -k N"))
	}
	if model == nil {
		model = g.ToIsing()
	}

	// Observability: a JSONL tracer when -trace is set, a metrics
	// registry when -metrics or -pprof asked for one, and the pprof +
	// /metrics debug server when -pprof names an address.
	var tracer mbrim.Tracer
	var jsonl *mbrim.JSONLTracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		jsonl = mbrim.NewJSONLTracer(f)
		tracer = jsonl
		defer jsonl.Close()
	}
	var registry *mbrim.Registry
	if *metricsOut || *pprofAddr != "" {
		registry = mbrim.NewRegistry()
	}
	// Introspection: -span-trace captures the whole event stream (span
	// events included) for the post-run Chrome trace export, and -diag
	// attaches the live diagnostics reducer. Both ride the same tracer
	// fan-out as -trace, and neither perturbs the solve trajectory.
	var capture *captureTracer
	var reducer *mbrim.DiagReducer
	if *spanTraceFile != "" || *diagOut {
		sinks := []mbrim.Tracer{tracer}
		if *spanTraceFile != "" {
			capture = &captureTracer{}
			sinks = append(sinks, capture)
		}
		if *diagOut {
			reducer = mbrim.NewDiagReducer(mbrim.DiagConfig{Registry: registry})
			sinks = append(sinks, reducer)
		}
		tracer = mbrim.Fanout(sinks...)
	}
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// The same operations surface mbrimd serves: Prometheus at
		// /metrics (JSON snapshot at /metrics.json), health/readiness,
		// and the run-manager endpoints, so a long -pprof CLI session
		// is scrapable and steerable like the daemon.
		mgr := runsvc.NewManager(runsvc.Config{Registry: registry})
		runsvc.Mount(mux, mgr, registry, nil)
		srv := &http.Server{
			Addr:    *pprofAddr,
			Handler: mux,
			// Slowloris guard: a client must finish its headers
			// promptly or lose the connection.
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil {
				fmt.Fprintln(os.Stderr, "mbrim: pprof server:", err)
			}
		}()
		fmt.Fprintf(info, "pprof:   http://%s/debug/pprof/ (Prometheus at /metrics, JSON at /metrics.json)\n", *pprofAddr)
	}

	// Lifecycle: -timeout bounds the run, SIGINT/SIGTERM cancel it, and
	// -resume feeds a prior run's checkpoint back in. Both cancellation
	// paths stop the engine at its next barrier; for multichip engines
	// the interruption carries resume bytes that -checkpoint persists.
	var resumeBytes []byte
	if *resumePath != "" {
		b, err := os.ReadFile(*resumePath)
		if err != nil {
			fatal(err)
		}
		resumeBytes = b
		fmt.Fprintf(info, "resume:  %s (%d bytes)\n", *resumePath, len(b))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -cluster switches the CLI from solving in process to coordinating
	// a distributed solve across mbrimd -worker nodes (see cluster.go).
	if *clusterWorkers != "" {
		runCluster(ctx, info, model, g, quboOffset, clusterOpts{
			workers:     *clusterWorkers,
			chips:       *chips,
			duration:    *duration,
			epoch:       *epoch,
			coordinated: *coordinated,
			bandwidth:   *bandwidth,
			backend:     *backend,
			seed:        *seed,
			sample:      *sample,
			ckptEvery:   *ckptEvery,
			federate:    *federate,
			tracePath:   *clusterTrace,

			chaosSeed:      *chaosSeed,
			chaosDrop:      *chaosDrop,
			chaosError:     *chaosError,
			chaosDelayRate: *chaosDelayRate,
			chaosDelay:     *chaosDelay,
			killWorker:     *chaosKillWorker,
			killEpoch:      *chaosKillEpoch,

			jsonOut:    *jsonOut,
			printSpins: *printSpins,
			metricsOut: *metricsOut,
			ckptPath:   *ckptPath,
			tracer:     tracer,
			registry:   registry,
		})
		return
	}

	out, err := mbrim.SolveCtx(ctx, mbrim.Request{
		Kind:              kind,
		Model:             model,
		Graph:             g,
		Seed:              *seed,
		Runs:              *runs,
		Sweeps:            *sweeps,
		Steps:             *steps,
		DurationNS:        *duration,
		Chips:             *chips,
		EpochNS:           *epoch,
		Coordinated:       *coordinated,
		ChannelBytesPerNS: *bandwidth,
		MachineCapacity:   *capacity,
		Backend:           *backend,
		SampleEveryNS:     *sample,
		RecordEpochStats:  *epochStats,
		Probes:            *probes,
		Parallel:          *parallel,
		Tracer:            tracer,
		SpanTrace:         *spanTraceFile != "",
		Diag:              *diagOut,
		Metrics:           registry,
		Faults: mbrim.FaultConfig{
			Seed:          *faultSeed,
			DropRate:      *faultDrop,
			CorruptRate:   *faultCorrupt,
			DelayRate:     *faultDelay,
			StallRate:     *faultStall,
			ChipLossEpoch: *faultChipLoss,
			ChipLossChip:  *faultChip,
			Recovery: mbrim.RecoveryConfig{
				Detect:              *recoverDetect,
				MaxRetransmits:      *recoverRetries,
				RetransmitBackoffNS: *recoverBackoff,
				WatchdogThreshold:   *recoverWatchdog,
				Repartition:         *recoverRepartition,
			},
		},
		Resume:    resumeBytes,
		Portfolio: pspec,
	})
	var intr *mbrim.InterruptedError
	if errors.As(err, &intr) {
		// Interrupted: summarize the best-so-far state, persist the
		// checkpoint when one exists, and exit nonzero so scripts can
		// tell a cut-short run from a completed one.
		stop()
		fmt.Fprintf(os.Stderr, "mbrim: interrupted: %v\n", intr.Cause)
		if p := intr.Outcome; p != nil {
			fmt.Fprintf(os.Stderr, "mbrim: best-so-far energy %.0f", p.Energy)
			if g != nil {
				fmt.Fprintf(os.Stderr, ", cut %.0f", p.Cut)
			}
			if p.ModelNS > 0 {
				fmt.Fprintf(os.Stderr, ", %.1f ns model time", p.ModelNS)
			}
			fmt.Fprintf(os.Stderr, " (wall %v)\n", p.Wall)
		}
		if *ckptPath != "" {
			if intr.Checkpoint == nil {
				fmt.Fprintf(os.Stderr, "mbrim: engine %s has no resumable state; no checkpoint written\n", *solver)
			} else if werr := os.WriteFile(*ckptPath, intr.Checkpoint, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "mbrim:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "mbrim: checkpoint written to %s (resume with -resume %s)\n", *ckptPath, *ckptPath)
			}
		}
		if jsonl != nil {
			if ferr := jsonl.Flush(); ferr != nil {
				fmt.Fprintln(os.Stderr, "mbrim:", ferr)
			}
		}
		if capture != nil {
			// Best-effort: a truncated run's spans still load (open
			// intervals are closed at the last observed timestamp).
			if werr := writeSpanTrace(*spanTraceFile, capture.events); werr != nil {
				fmt.Fprintln(os.Stderr, "mbrim:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "mbrim: span trace written to %s\n", *spanTraceFile)
			}
		}
		os.Exit(3)
	}
	if err != nil {
		fatal(err)
	}
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(info, "trace:   %s\n", *traceFile)
	}
	if capture != nil {
		if err := writeSpanTrace(*spanTraceFile, capture.events); err != nil {
			fatal(err)
		}
		fmt.Fprintf(info, "spans:   %s (Chrome trace; load in ui.perfetto.dev)\n", *spanTraceFile)
	}

	if *jsonOut {
		var snap any
		if *metricsOut && registry != nil {
			snap = registry.Snapshot()
		}
		var diagSnap any
		if reducer != nil {
			diagSnap = reducer.Snapshot()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			*mbrim.Outcome
			WallNS    int64   `json:"wallNS"`
			QUBOValue float64 `json:"quboValue,omitempty"`
			HasGraph  bool    `json:"hasGraph"`
			Metrics   any     `json:"metrics,omitempty"`
			Diag      any     `json:"diag,omitempty"`
		}{out, out.Wall.Nanoseconds(), out.Energy + quboOffset, g != nil, snap, diagSnap}); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("solver:  %s\n", out.Kind)
	if out.Backend != "" {
		fmt.Printf("backend: %s\n", out.Backend)
	}
	if g != nil {
		fmt.Printf("cut:     %.0f\n", out.Cut)
	}
	fmt.Printf("energy:  %.0f\n", out.Energy)
	if quboOffset != 0 {
		fmt.Printf("qubo:    %.0f (energy + offset)\n", out.Energy+quboOffset)
	}
	if out.ModelNS > 0 {
		fmt.Printf("machine: %.1f ns model time\n", out.ModelNS)
	}
	fmt.Printf("wall:    %v\n", out.Wall)
	for _, name := range []string{"flips", "bitChanges", "trafficBytes", "stallNS", "launches", "glueOps",
		"faultDrops", "faultCorruptions", "faultDelays", "faultStalls", "faultChipLosses",
		"recoveryRetransmits", "recoveryResyncs", "recoveryRepartitions", "recoveryStallNS"} {
		if v, ok := out.Stats[name]; ok && v != 0 {
			fmt.Printf("%-8s %.0f\n", name+":", v)
		}
	}
	if p := out.Portfolio; p != nil {
		how := "best at end of race"
		if p.HitTarget {
			how = "first to target"
		}
		fmt.Printf("race:    winner %s (entrant %d, %s)\n", p.WinnerKind, p.Winner, how)
		if p.Dispatched && p.Structure != nil {
			fmt.Printf("         auto-dispatched: density %.3f, degree CV %.2f\n",
				p.Structure.Density, p.Structure.DegreeCV)
		}
		for _, e := range p.Entrants {
			state := "finished"
			if e.Interrupted {
				state = "cancelled"
			}
			if e.Err != "" {
				state = "failed: " + e.Err
			}
			fmt.Printf("         e%d %-8s energy %.0f  wall %v  %s\n",
				e.Index, e.Kind, e.Energy, time.Duration(e.WallNS), state)
		}
		if h := p.HandOff; h != nil {
			fmt.Printf("         hand-off %s energy %.0f  wall %v\n",
				h.Kind, h.Energy, time.Duration(h.WallNS))
		}
	}
	if *printSpins {
		for _, s := range out.Spins {
			if s > 0 {
				fmt.Print("+")
			} else {
				fmt.Print("-")
			}
		}
		fmt.Println()
	}
	if reducer != nil {
		fmt.Println("diag:")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reducer.Snapshot()); err != nil {
			fatal(err)
		}
	}
	if *metricsOut && registry != nil {
		fmt.Println("metrics:")
		if err := registry.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// captureTracer keeps the whole event stream in memory so the Chrome
// trace export can run after the solve completes.
type captureTracer struct{ events []mbrim.Event }

func (c *captureTracer) Emit(e mbrim.Event) { c.events = append(c.events, e) }

func writeSpanTrace(path string, events []mbrim.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mbrim.WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbrim:", err)
	os.Exit(1)
}
