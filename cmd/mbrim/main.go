// Command mbrim solves a MaxCut/Ising problem from a Gset-format graph
// file (or a generated K-graph) with any engine in the library.
//
// Usage:
//
//	mbrim -solver mbrim -chips 4 -duration 500 graph.gset
//	mbrim -solver sa -sweeps 1000 -runs 10 -k 512
//
// With -k N a seeded K-graph is generated instead of reading a file.
// The exit status is 0 on success; the solution, cut value, energy and
// the time ledger are printed to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mbrim"
)

func main() {
	solver := flag.String("solver", "sa", "engine: "+fmt.Sprint(mbrim.Kinds()))
	k := flag.Int("k", 0, "generate a seeded K-graph of this size instead of reading a file")
	seed := flag.Uint64("seed", 1, "random seed")
	runs := flag.Int("runs", 1, "restarts / batch jobs")
	sweeps := flag.Int("sweeps", 200, "SA/tabu sweeps")
	steps := flag.Int("steps", 1000, "SBM steps")
	duration := flag.Float64("duration", 100, "machine anneal time, ns")
	chips := flag.Int("chips", 4, "multiprocessor chips")
	epoch := flag.Float64("epoch", 0, "multiprocessor epoch, ns (0 = default)")
	coordinated := flag.Bool("coordinated", false, "coordinate induced flips via synchronized PRNGs")
	bandwidth := flag.Float64("bandwidth", 0, "channel bandwidth, bytes/ns (0 = unlimited)")
	capacity := flag.Int("cap", 500, "machine capacity for d&c engines")
	printSpins := flag.Bool("spins", false, "print the solution spin vector")
	jsonOut := flag.Bool("json", false, "emit the outcome as JSON instead of text")
	flag.Parse()

	kind, err := mbrim.ParseKind(*solver)
	if err != nil {
		fatal(err)
	}
	// With -json, stdout carries only the JSON document; progress
	// lines go to stderr.
	info := os.Stdout
	if *jsonOut {
		info = os.Stderr
	}

	// The problem comes from a generated K-graph, a Gset graph file, or
	// a qbsolv-format .qubo file.
	var g *mbrim.Graph
	var model *mbrim.Model
	var quboOffset float64
	switch {
	case *k > 0:
		g = mbrim.CompleteGraph(*k, *seed)
		fmt.Fprintf(info, "problem: K%d (seed %d)\n", *k, *seed)
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".qubo"):
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		q, err := mbrim.ReadQUBOFile(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		model, quboOffset = q.ToIsing()
		fmt.Fprintf(info, "problem: %s (QUBO, %d variables)\n", flag.Arg(0), q.N())
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		g, err = mbrim.ReadGraph(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(info, "problem: %s (%d vertices, %d edges)\n", flag.Arg(0), g.N(), g.M())
	default:
		fatal(fmt.Errorf("need a graph file argument or -k N"))
	}
	if model == nil {
		model = g.ToIsing()
	}

	out, err := mbrim.Solve(mbrim.Request{
		Kind:              kind,
		Model:             model,
		Graph:             g,
		Seed:              *seed,
		Runs:              *runs,
		Sweeps:            *sweeps,
		Steps:             *steps,
		DurationNS:        *duration,
		Chips:             *chips,
		EpochNS:           *epoch,
		Coordinated:       *coordinated,
		ChannelBytesPerNS: *bandwidth,
		MachineCapacity:   *capacity,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			*mbrim.Outcome
			WallNS    int64   `json:"wallNS"`
			QUBOValue float64 `json:"quboValue,omitempty"`
			HasGraph  bool    `json:"hasGraph"`
		}{out, out.Wall.Nanoseconds(), out.Energy + quboOffset, g != nil}); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("solver:  %s\n", out.Kind)
	if g != nil {
		fmt.Printf("cut:     %.0f\n", out.Cut)
	}
	fmt.Printf("energy:  %.0f\n", out.Energy)
	if quboOffset != 0 {
		fmt.Printf("qubo:    %.0f (energy + offset)\n", out.Energy+quboOffset)
	}
	if out.ModelNS > 0 {
		fmt.Printf("machine: %.1f ns model time\n", out.ModelNS)
	}
	fmt.Printf("wall:    %v\n", out.Wall)
	for _, name := range []string{"flips", "bitChanges", "trafficBytes", "stallNS", "launches", "glueOps"} {
		if v, ok := out.Stats[name]; ok && v != 0 {
			fmt.Printf("%-8s %.0f\n", name+":", v)
		}
	}
	if *printSpins {
		for _, s := range out.Spins {
			if s > 0 {
				fmt.Print("+")
			} else {
				fmt.Print("-")
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbrim:", err)
	os.Exit(1)
}
