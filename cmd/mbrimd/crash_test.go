package main

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mbrim/internal/core"
	"mbrim/internal/graph"
	"mbrim/internal/rng"
)

// buildDaemon compiles mbrimd once into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mbrimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and scrapes the bound address from
// its banner line. The returned process is NOT cleaned up via t.Cleanup
// — crash tests kill it themselves.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "localhost:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "mbrimd: listening on http://"); ok {
			go func() { // keep draining so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return cmd, "http://" + rest
		}
	}
	_ = cmd.Process.Kill()
	t.Fatal("daemon never printed its listen banner")
	return nil, ""
}

func waitReady(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became ready", base)
}

type outcomeBody struct {
	State  string             `json:"state"`
	Energy float64            `json:"energy"`
	Stats  map[string]float64 `json:"stats"`
	Spins  []int8             `json:"spins"`
}

// TestCrashRecoveryBitIdentical is the end-to-end durability pin: a
// daemon is SIGKILLed mid-run with durable state on disk, a second
// daemon replays the journal and resumes the run from its last
// checkpoint, and the outcome must be bit-identical — energy, flips and
// full spin state — to the same request solved in-process without any
// interruption.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemons")
	}
	bin := buildDaemon(t)
	state := t.TempDir()

	cmd, base := startDaemon(t, bin, "-state-dir", state, "-checkpoint-every", "100ms")
	waitReady(t, base, 10*time.Second)

	// ~1.4s of wall time at this problem size: enough for several
	// checkpoints before the kill and real work left after it.
	body := `{"engine":"mbrim","k":64,"chips":2,"durationNS":5000,"seed":7}`
	resp, err := http.Post(base+"/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	// Wait for a durable checkpoint, then let one more cadence elapse so
	// the kill lands mid-flight with state genuinely behind the solve.
	ckptDir := filepath.Join(state, "checkpoints")
	deadline := time.Now().Add(15 * time.Second)
	for {
		if ents, err := os.ReadDir(ckptDir); err == nil && len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("no checkpoint file appeared in 15s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Second generation: same state dir, journal replays, run resumes.
	cmd2, base2 := startDaemon(t, bin, "-state-dir", state, "-checkpoint-every", "100ms")
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	waitReady(t, base2, 10*time.Second)

	var out outcomeBody
	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base2 + "/runs/run-1/outcome")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("resumed run never reached a terminal outcome")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if out.State != "completed" {
		t.Fatalf("resumed run state = %s, want completed", out.State)
	}

	// The uninterrupted reference, mirroring buildRequest's defaults for
	// the submitted body (graphSeed 1, sampleEvery duration/100, auto
	// backend).
	g := graph.Complete(64, rng.New(1))
	ref, err := core.Solve(core.Request{
		Kind: core.MBRIMConcurrent, Model: g.ToIsing(), Graph: g,
		Seed: 7, DurationNS: 5000, Chips: 2, SampleEveryNS: 50, Backend: "auto",
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out.Energy) != math.Float64bits(ref.Energy) {
		t.Fatalf("energy after crash-resume: %v != reference %v", out.Energy, ref.Energy)
	}
	if out.Stats["flips"] != ref.Stats["flips"] {
		t.Fatalf("flips after crash-resume: %v != reference %v", out.Stats["flips"], ref.Stats["flips"])
	}
	if len(out.Spins) != len(ref.Spins) {
		t.Fatalf("spin count %d != %d", len(out.Spins), len(ref.Spins))
	}
	for i := range out.Spins {
		if out.Spins[i] != ref.Spins[i] {
			t.Fatalf("spin %d differs after crash-resume", i)
		}
	}
}

// TestOverloadShedding429 pins the overload contract against the real
// binary: saturate -max-active and -max-queued, then assert the next
// submission is shed with 429 + Retry-After and the rejection counter
// moved.
func TestOverloadShedding429(t *testing.T) {
	if testing.Short() {
		t.Skip("builds real daemons")
	}
	bin := buildDaemon(t)
	cmd, base := startDaemon(t, bin, "-max-active", "1", "-max-queued", "1")
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	waitReady(t, base, 10*time.Second)

	body := `{"engine":"mbrim-seq","k":20,"durationNS":50000,"seed":3,"chips":4}`
	for i, want := range []int{202, 202, 429} {
		resp, err := http.Post(base+"/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("submit %d = %d, want %d", i+1, resp.StatusCode, want)
		}
		if want == 429 && resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	found := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "runs_queue_rejected_total") {
			found = sc.Text() == "runs_queue_rejected_total 1"
			if !found {
				t.Fatalf("exposition line = %q", sc.Text())
			}
		}
	}
	if !found {
		t.Fatal("runs_queue_rejected_total missing from /metrics")
	}
}
