// Command mbrimd is the long-running solve service — the operations
// plane a scraper and a dashboard point at. It accepts problems over
// HTTP, executes them through the core orchestration layer with live
// tracing attached, and exposes:
//
//	GET  /engines               registered engines + capabilities
//	POST /runs                  submit a problem (JSON)
//	GET  /runs                  list runs
//	GET  /runs/{id}             one run's live status
//	GET  /runs/{id}/events      Server-Sent Events tail of the trace
//	                            (ids + Last-Event-ID resume)
//	GET  /runs/{id}/diag        convergence / partition-quality report
//	GET  /runs/{id}/trace       Chrome trace download (ui.perfetto.dev)
//	POST /runs/{id}/cancel      stop at the next engine barrier
//	GET  /runs/{id}/checkpoint  download the resume envelope
//	GET  /runs/{id}/outcome     terminal outcome (energy, flips, spins)
//	POST /cluster/runs          coordinate a solve across worker nodes
//	GET  /cluster/runs[/{id}]   distributed-run status / checkpoint
//	GET  /cluster/runs/{id}/trace  merged fleet Chrome trace (federated runs)
//	GET  /cluster/runs/{id}/diag   fleet diagnostics (stragglers, sync share)
//	GET  /metrics               Prometheus text exposition
//	GET  /metrics.json          JSON metrics snapshot
//	GET  /healthz, /readyz      liveness / readiness
//
// With -worker the node additionally hosts problem slices on behalf of
// remote coordinators (PUT/GET/POST under /worker/slices) — the worker
// half of the distributed fabric in internal/cluster.
//
// Example session:
//
//	mbrimd -addr localhost:8351 &
//	curl -s localhost:8351/engines
//	curl -s -X POST localhost:8351/runs \
//	  -d '{"engine":"mbrim","k":256,"chips":4,"durationNS":500}'
//	curl -s -X POST localhost:8351/runs \
//	  -d '{"engine":"portfolio","k":64,"portfolio":{"entrants":[
//	       {"kind":"sa"},{"kind":"tabu"},{"kind":"dsbm"}],
//	       "targetEnergy":-100}}'
//	curl -s localhost:8351/runs/run-1
//	curl -s -N localhost:8351/runs/run-1/events
//	curl -s localhost:8351/runs/run-1/diag
//	curl -s localhost:8351/runs/run-1/trace > run-1.trace.json
//	curl -s localhost:8351/metrics | grep core_solve_wall_ns_bucket
//
// SIGINT/SIGTERM drain gracefully: readiness flips to 503, in-flight
// runs are cancelled (multichip runs capture checkpoints, retrievable
// until exit), and the listener shuts down. If -drain-timeout expires
// with runs still live, mbrimd exits with code 4 so supervisors can
// tell a dirty drain from a clean stop.
//
// With -state-dir the daemon survives crashes: every submission and
// terminal outcome is fsync'd to an append-only journal, durable runs
// checkpoint on the -checkpoint-every cadence, and a restart replays
// the journal — finished runs come back as status tombstones, and
// interrupted multichip runs resume bit-identically from their last
// checkpoint. /readyz serves 503 until the replay pass completes.
// -max-queued adds a bounded FIFO-with-priority admission queue beyond
// -max-active; when it is full, POST /runs sheds load with 429 and a
// Retry-After estimate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"mbrim/internal/cluster"
	"mbrim/internal/journal"
	"mbrim/internal/obs"
	"mbrim/internal/runs"
)

// exitDirtyDrain is returned when the drain deadline fires with runs
// still in flight — distinct from 0 (clean) and 1 (startup/serve
// failure).
const exitDirtyDrain = 4

func main() {
	addr := flag.String("addr", "localhost:8351", "listen address (host:port; port 0 picks one)")
	maxActive := flag.Int("max-active", 0, "max concurrently executing runs (0 = unlimited)")
	maxSpins := flag.Int("max-spins", runs.DefaultMaxSpins, "largest accepted problem, in spins")
	ringSize := flag.Int("ring", 4096, "recent events retained per run for replay")
	sseBuffer := flag.Int("sse-buffer", obs.DefaultBroadcastBuffer, "per-subscriber live-tail buffer, events")
	withPprof := flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/")
	backend := flag.String("backend", "auto", "default coupling backend for submitted runs: auto, dense, csr or blocked (deprecated alias for dense)")
	worker := flag.Bool("worker", false, "host problem slices for remote coordinators under /worker/slices")
	maxSlices := flag.Int("max-slices", cluster.DefaultMaxSlices, "slice capacity in -worker mode")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight runs on shutdown; expiry with live runs exits 4")
	flag.Var(aliasFlag{flag.Lookup("drain-timeout")}, "drain", "deprecated alias for -drain-timeout")
	stateDir := flag.String("state-dir", "", "durable state directory (run journal + checkpoints); empty disables durability")
	maxQueued := flag.Int("max-queued", 0, "admission queue depth beyond -max-active; 0 rejects immediately when saturated")
	checkpointEvery := flag.Duration("checkpoint-every", 2*time.Second, "checkpoint cadence for durable runs (takes effect with -state-dir)")
	maxRunMB := flag.Int("max-run-mb", 0, "per-run memory budget estimate, MiB (0 = unlimited)")
	retainRuns := flag.Int("retain-runs", 0, "terminal runs kept registered; older ones are evicted and their per-run diag series released (0 = keep all)")
	flag.Parse()

	reg := obs.NewRegistry()

	// Durability: replay whatever journal survives from the previous
	// process before opening it for appending, so the crash-recovery
	// pass sees only pre-restart records.
	var jw *journal.Writer
	var replayed *journal.Replayed
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mbrimd:", err)
			os.Exit(1)
		}
		jpath := filepath.Join(*stateDir, "run.journal")
		rep, err := journal.Replay(jpath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbrimd: journal replay:", err)
			os.Exit(1)
		}
		replayed = rep
		if jw, err = journal.Open(jpath, reg); err != nil {
			fmt.Fprintln(os.Stderr, "mbrimd: journal open:", err)
			os.Exit(1)
		}
	}

	mgr := runs.NewManager(runs.Config{
		Registry:        reg,
		RingSize:        *ringSize,
		BroadcastBuffer: *sseBuffer,
		MaxActive:       *maxActive,
		MaxQueued:       *maxQueued,
		MaxSpins:        *maxSpins,
		MaxRunBytes:     int64(*maxRunMB) << 20,
		DefaultBackend:  *backend,
		Journal:         jw,
		StateDir:        *stateDir,
		CheckpointEvery: *checkpointEvery,
		RetainRuns:      *retainRuns,
	})

	var draining, replaying atomic.Bool
	if jw != nil {
		// Hold submissions (503 on /readyz, ErrNotAccepting on POST
		// /runs) until the replay pass has rebuilt the run table.
		replaying.Store(true)
		mgr.SetAccepting(false)
	}
	mux := http.NewServeMux()
	runs.Mount(mux, mgr, reg, func() bool { return !draining.Load() && !replaying.Load() })
	clusterMgr := cluster.NewManager(reg, nil, *maxSpins)
	clusterMgr.SetJournal(jw)
	clusterMgr.Routes(mux)
	if *worker {
		cluster.NewWorker(reg, *maxSlices).Routes(mux)
	}
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbrimd:", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler: mux,
		// Slowloris guard: a client must finish its headers promptly.
		ReadHeaderTimeout: 5 * time.Second,
		// Bound how long a request body read may take. The SSE handler
		// clears its per-connection read deadline (it streams for as
		// long as the client listens), so this only fences regular
		// endpoints.
		ReadTimeout: 60 * time.Second,
		// Reap idle keep-alive connections from departed clients.
		IdleTimeout: 120 * time.Second,
	}
	// Printed (not logged) so scripts can scrape the bound address
	// when -addr used port 0.
	fmt.Printf("mbrimd: listening on http://%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	if jw != nil {
		if replayed.Torn {
			fmt.Fprintf(os.Stderr, "mbrimd: journal tail torn (%v); replaying the intact prefix\n", replayed.TailErr)
		}
		sum := mgr.Recover(replayed.Records)
		ct, cf := clusterMgr.Recover(replayed.Records)
		fmt.Fprintf(os.Stderr,
			"mbrimd: replayed %d journal record(s): %d tombstone(s), %d resumed, %d restarted from scratch, %d unrecoverable; cluster: %d tombstone(s), %d failed\n",
			len(replayed.Records), sum.Tombstones, sum.Resumed, sum.Restarted, sum.Unrecoverable, ct, cf)
		mgr.SetAccepting(true)
		replaying.Store(false)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mbrimd:", err)
		os.Exit(1)
	}

	// Drain: stop advertising readiness, cancel in-flight runs (each
	// multichip run captures its checkpoint on the way out), wait for
	// them, then close the listener.
	stop()
	draining.Store(true)
	if ids := mgr.CancelAll(); len(ids) > 0 {
		fmt.Fprintf(os.Stderr, "mbrimd: draining, cancelled %d run(s): %v\n", len(ids), ids)
	}
	clusterMgr.CancelAll()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	dirty := !mgr.Wait(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "mbrimd: shutdown:", err)
	}
	if jw != nil {
		// Interrupt checkpoints for the cancelled runs are already
		// persisted by finish(); close the journal last so their
		// terminal records hit disk.
		if err := jw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mbrimd: journal close:", err)
		}
	}
	if dirty {
		fmt.Fprintln(os.Stderr, "mbrimd: drain timeout; exiting with runs in flight")
		os.Exit(exitDirtyDrain)
	}
}

// aliasFlag forwards Set to another registered flag — used to keep the
// old -drain spelling working for -drain-timeout.
type aliasFlag struct{ target *flag.Flag }

func (a aliasFlag) String() string {
	if a.target == nil {
		return ""
	}
	return a.target.Value.String()
}

func (a aliasFlag) Set(s string) error { return a.target.Value.Set(s) }
